//! Background interference (noisy-neighbour) models.
//!
//! The level of interference in a production cloud cannot be controlled by the tenant; it
//! fluctuates on several time scales. We model it as a non-negative, time-correlated
//! signal `I(t)` that multiplies a configuration's sensitivity to produce its slowdown
//! (see [`crate::ExecutionSpec`]). All models allow *random access* in time — `level(t)`
//! is a pure function of `(seed, t)` — so repeated evaluation, parallel games, and
//! re-running experiments at a chosen start time are all deterministic.
//!
//! The composite profile used by most experiments ([`InterferenceProfile::typical`])
//! combines:
//!
//! * [`ValueNoise`] — smooth short-term fluctuation (minutes),
//! * [`RegimeNoise`] — piecewise-constant regime shifts (tens of minutes) imitating
//!   tenants arriving and departing,
//! * [`BurstNoise`] — rare, high spikes imitating bursty co-tenants.

use crate::rng::{hash_unit, mix};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// A time-varying, non-negative interference level.
///
/// Implementations must be deterministic functions of their seed and the queried time.
pub trait InterferenceModel: Send + Sync {
    /// Interference level at simulated time `t`; always `>= 0`.
    fn level(&self, t: SimTime) -> f64;

    /// Long-run mean level, used for calibration and reporting.
    fn mean_level(&self) -> f64;
}

/// A constant interference level, mostly useful in tests and as a "dedicated node" stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantInterference {
    level: f64,
}

impl ConstantInterference {
    /// Creates a constant-level model.
    ///
    /// # Panics
    ///
    /// Panics if `level` is negative or not finite.
    pub fn new(level: f64) -> Self {
        assert!(
            level.is_finite() && level >= 0.0,
            "interference level must be finite and non-negative"
        );
        Self { level }
    }

    /// A completely quiet environment.
    pub fn quiet() -> Self {
        Self::new(0.0)
    }
}

impl InterferenceModel for ConstantInterference {
    fn level(&self, _t: SimTime) -> f64 {
        self.level
    }

    fn mean_level(&self) -> f64 {
        self.level
    }
}

/// Smooth value noise: anchor points every `period` seconds with cosine interpolation.
///
/// Produces short-term correlated fluctuations in `[0, amplitude]` with mean
/// `amplitude / 2`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueNoise {
    seed: u64,
    period: f64,
    amplitude: f64,
}

impl ValueNoise {
    /// Creates a value-noise process.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0` or `amplitude < 0`.
    pub fn new(seed: u64, period: f64, amplitude: f64) -> Self {
        assert!(period > 0.0, "period must be positive");
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        Self {
            seed,
            period,
            amplitude,
        }
    }
}

impl InterferenceModel for ValueNoise {
    fn level(&self, t: SimTime) -> f64 {
        let x = t.as_seconds() / self.period;
        let i0 = x.floor() as u64;
        let i1 = i0 + 1;
        let frac = x - x.floor();
        let a = hash_unit(self.seed, i0);
        let b = hash_unit(self.seed, i1);
        // Cosine interpolation keeps the signal smooth without overshoot.
        let w = (1.0 - (std::f64::consts::PI * frac).cos()) / 2.0;
        self.amplitude * (a * (1.0 - w) + b * w)
    }

    fn mean_level(&self) -> f64 {
        self.amplitude / 2.0
    }
}

/// Piecewise-constant regime noise: every `period` seconds a new regime is drawn from
/// `levels` with the given `weights`, imitating co-tenant arrival/departure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeNoise {
    seed: u64,
    period: f64,
    levels: Vec<f64>,
    weights: Vec<f64>,
}

impl RegimeNoise {
    /// Creates a regime-switching process.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0`, the levels/weights are empty or of mismatched length, or
    /// any weight is negative.
    pub fn new(seed: u64, period: f64, levels: Vec<f64>, weights: Vec<f64>) -> Self {
        assert!(period > 0.0, "period must be positive");
        assert!(!levels.is_empty(), "at least one regime level required");
        assert_eq!(
            levels.len(),
            weights.len(),
            "levels/weights length mismatch"
        );
        assert!(
            weights.iter().all(|w| *w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
            "weights must be non-negative with a positive sum"
        );
        Self {
            seed,
            period,
            levels,
            weights,
        }
    }

    fn regime_at(&self, epoch: u64) -> f64 {
        let total: f64 = self.weights.iter().sum();
        let mut target = hash_unit(mix(self.seed, 0x5eed), epoch) * total;
        for (level, weight) in self.levels.iter().zip(self.weights.iter()) {
            if target < *weight {
                return *level;
            }
            target -= *weight;
        }
        *self.levels.last().expect("levels is non-empty")
    }
}

impl InterferenceModel for RegimeNoise {
    fn level(&self, t: SimTime) -> f64 {
        let epoch = (t.as_seconds() / self.period).floor() as u64;
        self.regime_at(epoch)
    }

    fn mean_level(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.levels
            .iter()
            .zip(self.weights.iter())
            .map(|(l, w)| l * w / total)
            .sum()
    }
}

/// Rare bursts: within each `period`-second window, with probability `probability` the
/// window contains a burst of the given `magnitude` covering a fraction `duty` of it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstNoise {
    seed: u64,
    period: f64,
    probability: f64,
    magnitude: f64,
    duty: f64,
}

impl BurstNoise {
    /// Creates a burst process.
    ///
    /// # Panics
    ///
    /// Panics if `period <= 0`, `probability`/`duty` are outside `[0, 1]`, or
    /// `magnitude < 0`.
    pub fn new(seed: u64, period: f64, probability: f64, magnitude: f64, duty: f64) -> Self {
        assert!(period > 0.0, "period must be positive");
        assert!((0.0..=1.0).contains(&probability), "probability in [0,1]");
        assert!((0.0..=1.0).contains(&duty), "duty cycle in [0,1]");
        assert!(magnitude >= 0.0, "magnitude must be non-negative");
        Self {
            seed,
            period,
            probability,
            magnitude,
            duty,
        }
    }
}

impl InterferenceModel for BurstNoise {
    fn level(&self, t: SimTime) -> f64 {
        let x = t.as_seconds() / self.period;
        let epoch = x.floor() as u64;
        let frac = x - x.floor();
        let has_burst = hash_unit(mix(self.seed, 0xb00f), epoch) < self.probability;
        if !has_burst {
            return 0.0;
        }
        // The burst occupies a contiguous window starting at a pseudo-random offset.
        let start = hash_unit(mix(self.seed, 0xcafe), epoch) * (1.0 - self.duty);
        if frac >= start && frac < start + self.duty {
            self.magnitude
        } else {
            0.0
        }
    }

    fn mean_level(&self) -> f64 {
        self.probability * self.duty * self.magnitude
    }
}

/// Sum of component interference models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeInterference {
    base: f64,
    value: ValueNoise,
    regime: RegimeNoise,
    burst: BurstNoise,
}

impl CompositeInterference {
    /// Creates a composite of base level + value noise + regime noise + bursts.
    pub fn new(base: f64, value: ValueNoise, regime: RegimeNoise, burst: BurstNoise) -> Self {
        assert!(base >= 0.0, "base level must be non-negative");
        Self {
            base,
            value,
            regime,
            burst,
        }
    }
}

impl InterferenceModel for CompositeInterference {
    fn level(&self, t: SimTime) -> f64 {
        self.base + self.value.level(t) + self.regime.level(t) + self.burst.level(t)
    }

    fn mean_level(&self) -> f64 {
        self.base + self.value.mean_level() + self.regime.mean_level() + self.burst.mean_level()
    }
}

/// A named, seedable recipe for building the interference model of a node.
///
/// Profiles are the value the rest of the system passes around (they are `Copy`-free but
/// cheap to clone); the concrete model is instantiated per node so that two different VMs
/// observe different — but individually reproducible — noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InterferenceProfile {
    /// No interference at all (a dedicated node).
    Dedicated,
    /// A constant interference level.
    Constant(f64),
    /// The default shared-cloud profile used in the paper-shaped experiments.
    Typical,
    /// A heavier profile for small VM sizes / stress tests.
    Heavy,
    /// Fully custom composite parameters: `(base, value_amplitude, regime_levels_scale, burst_magnitude)`.
    Custom {
        /// Constant base load.
        base: f64,
        /// Amplitude of the smooth value noise component.
        value_amplitude: f64,
        /// Scale multiplier applied to the regime levels.
        regime_scale: f64,
        /// Magnitude of burst spikes.
        burst_magnitude: f64,
    },
}

impl InterferenceProfile {
    /// The default shared-cloud profile (mean level ≈ 0.27, bursts to ≈ 1.2).
    pub fn typical() -> Self {
        InterferenceProfile::Typical
    }

    /// A heavier profile: roughly twice the mean interference of [`typical`](Self::typical).
    pub fn heavy() -> Self {
        InterferenceProfile::Heavy
    }

    /// Instantiates the concrete model for a node identified by `seed`.
    pub fn build(&self, seed: u64) -> Box<dyn InterferenceModel> {
        match self {
            InterferenceProfile::Dedicated => Box::new(ConstantInterference::quiet()),
            InterferenceProfile::Constant(level) => Box::new(ConstantInterference::new(*level)),
            InterferenceProfile::Typical => Box::new(build_composite(seed, 0.05, 0.25, 1.0, 0.9)),
            InterferenceProfile::Heavy => Box::new(build_composite(seed, 0.15, 0.45, 2.0, 1.4)),
            InterferenceProfile::Custom {
                base,
                value_amplitude,
                regime_scale,
                burst_magnitude,
            } => Box::new(build_composite(
                seed,
                *base,
                *value_amplitude,
                *regime_scale,
                *burst_magnitude,
            )),
        }
    }

    /// Long-run mean level of the profile (for calibration and documentation).
    ///
    /// # Sampling contract
    ///
    /// The `seed` selects a concrete noise *realisation*, but every model's
    /// [`InterferenceModel::mean_level`] is an analytic expectation that is independent
    /// of the realisation — so this function returns the same value for every seed.
    /// The parameter exists because composite profiles are only instantiated per node
    /// (see [`build`](Self::build)); the seedless `Dedicated`/`Constant` cases answer
    /// directly without boxing a model at all.
    pub fn mean_level(&self, seed: u64) -> f64 {
        match self {
            InterferenceProfile::Dedicated => 0.0,
            InterferenceProfile::Constant(level) => *level,
            _ => self.build(seed).mean_level(),
        }
    }
}

/// A flattened, memoizing interference sampler for the simulator hot loop.
///
/// [`InterferenceProfile::build`] returns a boxed [`InterferenceModel`]; calling
/// `level(t)` on it pays dynamic dispatch and, for the composite profiles, recomputes
/// every component hash even though the regime/burst epochs only change every few
/// hundred simulated seconds. `InterferenceSampler` is the same signal evaluated
/// without the box: component parameters are flattened into one struct, pure
/// derived values (mixed seeds, the regime weight total) are precomputed once, and
/// the per-epoch hashes are memoized in [`Cell`]s keyed by the epoch index.
///
/// The sampler is **bit-identical** to the boxed model: for every profile, seed and
/// time, `sampler.level(t).to_bits() == profile.build(seed).level(t).to_bits()`.
/// Memoization only caches values that are pure functions of `(seed, epoch)` and the
/// arithmetic expressions mirror the component models exactly, so no floating-point
/// operation is reordered.
#[derive(Debug, Clone)]
pub struct InterferenceSampler {
    kind: SamplerKind,
}

#[derive(Debug, Clone)]
enum SamplerKind {
    Constant(f64),
    Composite(Box<CompositeSampler>),
}

#[derive(Debug, Clone)]
struct CompositeSampler {
    base: f64,
    // Value-noise component (anchor hashes cached per cell index).
    value_seed: u64,
    value_period: f64,
    value_amplitude: f64,
    value_cache: Cell<Option<(u64, f64, f64)>>,
    // Regime component (level cached per epoch; weight total precomputed in the
    // exact summation order `weights.iter().sum()` uses).
    regime_seed: u64,
    regime_period: f64,
    regime_levels: Vec<f64>,
    regime_weights: Vec<f64>,
    regime_total: f64,
    regime_cache: Cell<Option<(u64, f64)>>,
    // Burst component (burst placement cached per epoch).
    burst_occupancy_seed: u64,
    burst_start_seed: u64,
    burst_period: f64,
    burst_probability: f64,
    burst_magnitude: f64,
    burst_duty: f64,
    burst_cache: Cell<Option<(u64, bool, f64)>>,
}

impl CompositeSampler {
    fn from_model(model: &CompositeInterference) -> Self {
        Self {
            base: model.base,
            value_seed: model.value.seed,
            value_period: model.value.period,
            value_amplitude: model.value.amplitude,
            value_cache: Cell::new(None),
            regime_seed: mix(model.regime.seed, 0x5eed),
            regime_period: model.regime.period,
            regime_levels: model.regime.levels.clone(),
            regime_weights: model.regime.weights.clone(),
            regime_total: model.regime.weights.iter().sum(),
            regime_cache: Cell::new(None),
            burst_occupancy_seed: mix(model.burst.seed, 0xb00f),
            burst_start_seed: mix(model.burst.seed, 0xcafe),
            burst_period: model.burst.period,
            burst_probability: model.burst.probability,
            burst_magnitude: model.burst.magnitude,
            burst_duty: model.burst.duty,
            burst_cache: Cell::new(None),
        }
    }

    fn level(&self, seconds: f64) -> f64 {
        // Value noise: identical expressions to `ValueNoise::level`, with the two
        // anchor hashes (pure functions of the cell index) memoized per cell.
        let x = seconds / self.value_period;
        let i0 = x.floor() as u64;
        let frac = x - x.floor();
        let (a, b) = match self.value_cache.get() {
            Some((cached, a, b)) if cached == i0 => (a, b),
            _ => {
                let a = hash_unit(self.value_seed, i0);
                let b = hash_unit(self.value_seed, i0 + 1);
                self.value_cache.set(Some((i0, a, b)));
                (a, b)
            }
        };
        let w = (1.0 - (std::f64::consts::PI * frac).cos()) / 2.0;
        let value = self.value_amplitude * (a * (1.0 - w) + b * w);

        // Regime noise: the drawn level is constant within an epoch, so the whole
        // weighted walk of `RegimeNoise::regime_at` is memoized per epoch.
        let regime_epoch = (seconds / self.regime_period).floor() as u64;
        let regime = match self.regime_cache.get() {
            Some((cached, level)) if cached == regime_epoch => level,
            _ => {
                let mut target = hash_unit(self.regime_seed, regime_epoch) * self.regime_total;
                let mut chosen = *self
                    .regime_levels
                    .last()
                    .expect("regime levels are non-empty");
                for (level, weight) in self.regime_levels.iter().zip(self.regime_weights.iter()) {
                    if target < *weight {
                        chosen = *level;
                        break;
                    }
                    target -= *weight;
                }
                self.regime_cache.set(Some((regime_epoch, chosen)));
                chosen
            }
        };

        // Bursts: occupancy and start offset are per-epoch draws, memoized; only the
        // window membership test runs per call, exactly as in `BurstNoise::level`.
        let xb = seconds / self.burst_period;
        let burst_epoch = xb.floor() as u64;
        let burst_frac = xb - xb.floor();
        let (has_burst, start) = match self.burst_cache.get() {
            Some((cached, has, start)) if cached == burst_epoch => (has, start),
            _ => {
                let has =
                    hash_unit(self.burst_occupancy_seed, burst_epoch) < self.burst_probability;
                let start = if has {
                    hash_unit(self.burst_start_seed, burst_epoch) * (1.0 - self.burst_duty)
                } else {
                    0.0
                };
                self.burst_cache.set(Some((burst_epoch, has, start)));
                (has, start)
            }
        };
        let burst = if has_burst && burst_frac >= start && burst_frac < start + self.burst_duty {
            self.burst_magnitude
        } else {
            0.0
        };

        self.base + value + regime + burst
    }
}

impl InterferenceSampler {
    /// Interference level at simulated time `t`; bit-identical to the boxed model.
    #[inline]
    pub fn level(&self, t: SimTime) -> f64 {
        self.level_at_seconds(t.as_seconds())
    }

    /// Interference level at `seconds` of simulated time (hot-loop entry point that
    /// skips the `SimTime` wrapper).
    #[inline]
    pub fn level_at_seconds(&self, seconds: f64) -> f64 {
        match &self.kind {
            SamplerKind::Constant(level) => *level,
            SamplerKind::Composite(composite) => composite.level(seconds),
        }
    }
}

impl InterferenceProfile {
    /// Instantiates the flattened, memoizing sampler for a node identified by `seed`.
    ///
    /// Bit-identical to `self.build(seed).level(t)` for every `t`; see
    /// [`InterferenceSampler`].
    pub fn sampler(&self, seed: u64) -> InterferenceSampler {
        let kind = match self {
            InterferenceProfile::Dedicated => SamplerKind::Constant(0.0),
            InterferenceProfile::Constant(level) => {
                SamplerKind::Constant(ConstantInterference::new(*level).level)
            }
            InterferenceProfile::Typical => SamplerKind::Composite(Box::new(
                CompositeSampler::from_model(&build_composite(seed, 0.05, 0.25, 1.0, 0.9)),
            )),
            InterferenceProfile::Heavy => SamplerKind::Composite(Box::new(
                CompositeSampler::from_model(&build_composite(seed, 0.15, 0.45, 2.0, 1.4)),
            )),
            InterferenceProfile::Custom {
                base,
                value_amplitude,
                regime_scale,
                burst_magnitude,
            } => SamplerKind::Composite(Box::new(CompositeSampler::from_model(&build_composite(
                seed,
                *base,
                *value_amplitude,
                *regime_scale,
                *burst_magnitude,
            )))),
        };
        InterferenceSampler { kind }
    }
}

fn build_composite(
    seed: u64,
    base: f64,
    value_amplitude: f64,
    regime_scale: f64,
    burst_magnitude: f64,
) -> CompositeInterference {
    let value = ValueNoise::new(mix(seed, 1), 480.0, value_amplitude);
    let regime = RegimeNoise::new(
        mix(seed, 2),
        900.0,
        vec![
            0.0,
            0.12 * regime_scale,
            0.3 * regime_scale,
            0.55 * regime_scale,
        ],
        vec![0.35, 0.35, 0.2, 0.1],
    );
    let burst = BurstNoise::new(mix(seed, 3), 600.0, 0.25, burst_magnitude, 0.15);
    CompositeInterference::new(base, value, regime, burst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(n: usize, step: f64) -> impl Iterator<Item = SimTime> {
        (0..n).map(move |i| SimTime::from_seconds(i as f64 * step))
    }

    #[test]
    fn constant_is_constant() {
        let m = ConstantInterference::new(0.4);
        for t in times(10, 100.0) {
            assert_eq!(m.level(t), 0.4);
        }
        assert_eq!(m.mean_level(), 0.4);
    }

    #[test]
    fn value_noise_bounded_and_deterministic() {
        let m = ValueNoise::new(7, 60.0, 0.5);
        for t in times(500, 13.0) {
            let v = m.level(t);
            assert!((0.0..=0.5).contains(&v), "value noise out of range: {v}");
            assert_eq!(v, m.level(t));
        }
    }

    #[test]
    fn value_noise_is_time_correlated() {
        let m = ValueNoise::new(7, 600.0, 1.0);
        // Adjacent samples (1s apart) should be much closer than samples far apart.
        let a = m.level(SimTime::from_seconds(100.0));
        let b = m.level(SimTime::from_seconds(101.0));
        assert!((a - b).abs() < 0.05);
    }

    #[test]
    fn regime_noise_levels_come_from_catalog() {
        let m = RegimeNoise::new(3, 300.0, vec![0.0, 0.2, 0.6], vec![1.0, 1.0, 1.0]);
        for t in times(100, 137.0) {
            let v = m.level(t);
            assert!(
                [0.0, 0.2, 0.6].iter().any(|l| (v - l).abs() < 1e-12),
                "unexpected regime level {v}"
            );
        }
    }

    #[test]
    fn regime_noise_mean_is_weighted() {
        let m = RegimeNoise::new(3, 300.0, vec![0.0, 1.0], vec![3.0, 1.0]);
        assert!((m.mean_level() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn burst_noise_is_zero_or_magnitude() {
        let m = BurstNoise::new(11, 600.0, 0.5, 1.5, 0.2);
        let mut saw_burst = false;
        for t in times(5000, 37.0) {
            let v = m.level(t);
            assert!(v == 0.0 || (v - 1.5).abs() < 1e-12);
            if v > 0.0 {
                saw_burst = true;
            }
        }
        assert!(saw_burst, "expected at least one burst over a long horizon");
    }

    #[test]
    fn typical_profile_statistics() {
        let model = InterferenceProfile::typical().build(99);
        let levels: Vec<f64> = times(20_000, 7.0).map(|t| model.level(t)).collect();
        let mean = dg_stats::mean(&levels);
        let max = levels.iter().copied().fold(0.0_f64, f64::max);
        assert!(levels.iter().all(|l| *l >= 0.0));
        assert!(
            (0.1..0.6).contains(&mean),
            "typical mean interference out of expected band: {mean}"
        );
        assert!(max > 0.6, "typical profile should show bursts, max={max}");
    }

    #[test]
    fn heavy_profile_is_heavier_than_typical() {
        let typical = InterferenceProfile::typical().build(5);
        let heavy = InterferenceProfile::heavy().build(5);
        let t_mean: f64 = dg_stats::mean(
            &times(5000, 11.0)
                .map(|t| typical.level(t))
                .collect::<Vec<_>>(),
        );
        let h_mean: f64 = dg_stats::mean(
            &times(5000, 11.0)
                .map(|t| heavy.level(t))
                .collect::<Vec<_>>(),
        );
        assert!(h_mean > t_mean * 1.3, "heavy={h_mean} typical={t_mean}");
    }

    #[test]
    fn dedicated_profile_is_quiet() {
        let m = InterferenceProfile::Dedicated.build(1);
        assert_eq!(m.level(SimTime::from_seconds(123.0)), 0.0);
        assert_eq!(m.mean_level(), 0.0);
    }

    #[test]
    fn different_seeds_give_different_noise() {
        let a = InterferenceProfile::typical().build(1);
        let b = InterferenceProfile::typical().build(2);
        let t = SimTime::from_seconds(1234.0);
        // Not a strict requirement at any single instant, but across a window the two
        // seeds must diverge somewhere.
        let mut differs = false;
        for i in 0..200 {
            let ti = SimTime::from_seconds(t.as_seconds() + i as f64 * 31.0);
            if (a.level(ti) - b.level(ti)).abs() > 1e-9 {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }

    #[test]
    fn mean_level_is_seed_independent_and_cheap_for_seedless_profiles() {
        // Seedless cases answer without building a model; all cases are analytic
        // expectations, so the seed never changes the answer.
        assert_eq!(InterferenceProfile::Dedicated.mean_level(1), 0.0);
        assert_eq!(InterferenceProfile::Constant(0.4).mean_level(1), 0.4);
        for profile in [
            InterferenceProfile::Dedicated,
            InterferenceProfile::Constant(0.7),
            InterferenceProfile::Typical,
            InterferenceProfile::Heavy,
        ] {
            assert_eq!(
                profile.mean_level(1).to_bits(),
                profile.mean_level(999).to_bits(),
                "{profile:?}: mean_level must not depend on the seed"
            );
        }
    }

    #[test]
    fn sampler_is_bit_identical_to_boxed_model() {
        let profiles = [
            InterferenceProfile::Dedicated,
            InterferenceProfile::Constant(0.37),
            InterferenceProfile::Typical,
            InterferenceProfile::Heavy,
            InterferenceProfile::Custom {
                base: 0.08,
                value_amplitude: 0.3,
                regime_scale: 1.5,
                burst_magnitude: 1.1,
            },
        ];
        for profile in &profiles {
            for seed in [0, 1, 7, 99, u64::MAX / 3] {
                let model = profile.build(seed);
                let sampler = profile.sampler(seed);
                // Dense sweep (sequential, cache-friendly) plus scattered jumps
                // (cache-hostile) must both match the boxed model bit for bit.
                for i in 0..4000 {
                    let t = SimTime::from_seconds(i as f64 * 1.7);
                    assert_eq!(
                        sampler.level(t).to_bits(),
                        model.level(t).to_bits(),
                        "{profile:?} seed={seed} t={t:?}"
                    );
                }
                for i in 0..500 {
                    let t = SimTime::from_seconds(((i * 7919) % 100_000) as f64 * 3.1);
                    assert_eq!(
                        sampler.level(t).to_bits(),
                        model.level(t).to_bits(),
                        "{profile:?} seed={seed} scattered t={t:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn composite_mean_is_sum_of_parts() {
        let value = ValueNoise::new(1, 60.0, 0.2);
        let regime = RegimeNoise::new(2, 300.0, vec![0.0, 0.4], vec![1.0, 1.0]);
        let burst = BurstNoise::new(3, 600.0, 0.1, 1.0, 0.1);
        let composite = CompositeInterference::new(0.05, value, regime, burst);
        let expected = 0.05 + 0.1 + 0.2 + 0.01;
        assert!((composite.mean_level() - expected).abs() < 1e-12);
    }
}
