//! Co-located execution of several configurations on one node ("playing a game").
//!
//! A [`ColocatedRun`] advances a set of [`ExecutionSpec`]s through simulated time under a
//! *shared* interference signal plus a co-location contention term. The tournament layer
//! steps the run, inspects per-player progress (work-done fractions), and may stop it
//! early; the run itself never decides when to terminate.

use crate::interference::InterferenceModel;
use crate::rng::SimRng;
use crate::spec::ExecutionSpec;
use crate::time::SimTime;
use crate::vm::VmType;
use serde::{Deserialize, Serialize};

/// Strength of the contention added per co-located competitor, relative to full occupancy
/// of the VM (`contention = COEFF * (players - 1) / vcpus`). Crate-visible so the fused
/// fast path in `cloud.rs` applies the exact same physics.
pub(crate) const CONTENTION_COEFF: f64 = 0.35;

/// Standard deviation of the per-player contention jitter: some players are hurt more by
/// their co-runners than others, which is why DarwinGame re-tests promising players in
/// several games.
pub(crate) const PLAYER_JITTER_STD: f64 = 0.15;

/// Standard deviation of per-player measurement noise on the progress rate.
pub(crate) const MEASUREMENT_NOISE_STD: f64 = 0.003;

/// Progress of one player inside a co-located run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlayerProgress {
    /// Fraction of total work completed, in `[0, 1]`.
    pub work_done: f64,
    /// Elapsed seconds (from game start) at which the player finished, if it has.
    pub finish_time: Option<f64>,
}

/// An in-flight co-located execution ("game" in DarwinGame terms).
pub struct ColocatedRun {
    vm: VmType,
    start: SimTime,
    elapsed: f64,
    specs: Vec<ExecutionSpec>,
    progress: Vec<f64>,
    finish_times: Vec<Option<f64>>,
    player_jitter: Vec<f64>,
    measurement_noise: Vec<f64>,
    contention: f64,
    overload: f64,
    interference: Box<dyn InterferenceModel>,
}

impl std::fmt::Debug for ColocatedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColocatedRun")
            .field("vm", &self.vm)
            .field("start", &self.start)
            .field("elapsed", &self.elapsed)
            .field("players", &self.specs.len())
            .field("progress", &self.progress)
            .finish()
    }
}

impl ColocatedRun {
    /// Creates a run; used by [`CloudEnvironment::start_colocated`].
    ///
    /// `specs` must already be scaled for the VM's hardware speed.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    ///
    /// [`CloudEnvironment::start_colocated`]: crate::CloudEnvironment::start_colocated
    pub(crate) fn new(
        vm: VmType,
        start: SimTime,
        specs: Vec<ExecutionSpec>,
        interference: Box<dyn InterferenceModel>,
        rng: &mut SimRng,
    ) -> Self {
        assert!(
            !specs.is_empty(),
            "a co-located run needs at least one player"
        );
        let players = specs.len();
        let vcpus = vm.vcpus();
        let contention = CONTENTION_COEFF * (players.saturating_sub(1)) as f64 / vcpus as f64;
        // If more players are packed than there are vCPUs, everybody time-shares.
        let overload = if players > vcpus {
            players as f64 / vcpus as f64
        } else {
            1.0
        };
        let player_jitter: Vec<f64> = (0..players)
            .map(|_| rng.normal_with(1.0, PLAYER_JITTER_STD).clamp(0.6, 1.4))
            .collect();
        let measurement_noise: Vec<f64> = (0..players)
            .map(|_| {
                rng.normal_with(1.0, MEASUREMENT_NOISE_STD)
                    .clamp(0.99, 1.01)
            })
            .collect();
        Self {
            vm,
            start,
            elapsed: 0.0,
            progress: vec![0.0; players],
            finish_times: vec![None; players],
            player_jitter,
            measurement_noise,
            contention,
            overload,
            specs,
            interference,
        }
    }

    /// Number of players in the game.
    pub fn players(&self) -> usize {
        self.specs.len()
    }

    /// The VM the game is running on.
    pub fn vm(&self) -> VmType {
        self.vm
    }

    /// Simulated time at which the game started.
    pub fn start_time(&self) -> SimTime {
        self.start
    }

    /// Seconds of simulated time the game has been running.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Work-done fraction of every player, in game order.
    pub fn work_fractions(&self) -> &[f64] {
        &self.progress
    }

    /// Progress snapshot of player `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn player_progress(&self, i: usize) -> PlayerProgress {
        PlayerProgress {
            work_done: self.progress[i],
            finish_time: self.finish_times[i],
        }
    }

    /// Index of the player with the most work done (ties broken by lower index).
    pub fn leader(&self) -> usize {
        let mut best = 0;
        for i in 1..self.progress.len() {
            if self.progress[i] > self.progress[best] {
                best = i;
            }
        }
        best
    }

    /// True when player `i` has completed all of its work.
    pub fn finished(&self, i: usize) -> bool {
        self.finish_times[i].is_some()
    }

    /// True when at least one player has completed its work.
    pub fn any_finished(&self) -> bool {
        self.finish_times.iter().any(Option::is_some)
    }

    /// True when every player has completed its work.
    pub fn all_finished(&self) -> bool {
        self.finish_times.iter().all(Option::is_some)
    }

    /// Advances the game by `dt` seconds of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0 && dt.is_finite(), "step size must be positive");
        let now = self.start + self.elapsed;
        let ambient = self.interference.level(now) * self.vm.interference_factor();
        for i in 0..self.specs.len() {
            if self.finish_times[i].is_some() {
                continue;
            }
            let effective = (ambient + self.contention) * self.player_jitter[i];
            let rate =
                self.specs[i].progress_rate(effective) * self.measurement_noise[i] / self.overload;
            let advanced = self.progress[i] + rate * dt;
            if advanced >= 1.0 {
                // Interpolate the exact finish instant inside this step.
                let remaining = 1.0 - self.progress[i];
                let needed = remaining / rate;
                self.finish_times[i] = Some(self.elapsed + needed);
                self.progress[i] = 1.0;
            } else {
                self.progress[i] = advanced;
            }
        }
        self.elapsed += dt;
    }

    /// Steps the game until every player finishes or `max_seconds` of simulated time have
    /// elapsed, whichever comes first.
    pub fn run_to_completion(&mut self, max_seconds: f64) {
        let dt = self.default_step();
        while !self.all_finished() && self.elapsed < max_seconds {
            self.step(dt);
        }
    }

    /// Steps the game until the fastest player finishes or `max_seconds` elapse.
    pub fn run_until_first_finish(&mut self, max_seconds: f64) {
        let dt = self.default_step();
        while !self.any_finished() && self.elapsed < max_seconds {
            self.step(dt);
        }
    }

    /// A reasonable integration step: 1/200 of the smallest base time, at least 0.25 s.
    pub fn default_step(&self) -> f64 {
        let min_base = self
            .specs
            .iter()
            .map(ExecutionSpec::base_time)
            .fold(f64::INFINITY, f64::min);
        (min_base / 200.0).max(0.25)
    }

    /// Freezes the run into an outcome snapshot.
    pub fn into_outcome(self) -> ColocationOutcome {
        let estimated: Vec<f64> = self
            .progress
            .iter()
            .enumerate()
            .map(|(i, p)| match self.finish_times[i] {
                Some(t) => t,
                // Extrapolate from current progress; players that have done no work get
                // an effectively infinite estimate.
                None if *p > 0.0 => self.elapsed / p,
                None => f64::INFINITY,
            })
            .collect();
        ColocationOutcome {
            vm: self.vm,
            start: self.start,
            elapsed: self.elapsed,
            work_fractions: self.progress,
            finish_times: self.finish_times,
            estimated_times: estimated,
        }
    }
}

/// The result of a finished (or early-terminated) co-located run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationOutcome {
    vm: VmType,
    start: SimTime,
    elapsed: f64,
    work_fractions: Vec<f64>,
    finish_times: Vec<Option<f64>>,
    estimated_times: Vec<f64>,
}

impl ColocationOutcome {
    /// Number of players.
    pub fn players(&self) -> usize {
        self.work_fractions.len()
    }

    /// The VM the game ran on.
    pub fn vm(&self) -> VmType {
        self.vm
    }

    /// Simulated start time of the game.
    pub fn start_time(&self) -> SimTime {
        self.start
    }

    /// Wall-clock seconds the node was occupied.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Work-done fraction per player at the end of the game.
    pub fn work_fractions(&self) -> &[f64] {
        &self.work_fractions
    }

    /// Completion time (seconds from game start) per player, `None` when the game was
    /// stopped before the player finished.
    pub fn finish_times(&self) -> &[Option<f64>] {
        &self.finish_times
    }

    /// Observed (or extrapolated) execution time per player: the finish time when the
    /// player completed, otherwise `elapsed / work_done`.
    pub fn observed_times(&self) -> &[f64] {
        &self.estimated_times
    }

    /// Index of the winning player: the one with the lowest observed (or extrapolated)
    /// execution time, which is also the player with the most work done whenever the
    /// game was stopped before everyone finished. Ties are broken by lower index.
    pub fn winner(&self) -> usize {
        let mut best = 0;
        for i in 1..self.estimated_times.len() {
            if self.estimated_times[i] < self.estimated_times[best] {
                best = i;
            }
        }
        best
    }

    /// Players ranked from best (fastest / most work done) to worst.
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.estimated_times.len()).collect();
        order.sort_by(|a, b| {
            self.estimated_times[*a]
                .partial_cmp(&self.estimated_times[*b])
                .expect("estimated times are never NaN")
                .then(a.cmp(b))
        });
        order
    }

    /// Execution scores per player: relative progress toward completion compared to the
    /// best player, in `[0, 1]`.
    ///
    /// This is the quantity Fig. 5 of the paper calls the *execution score*: the fraction
    /// of work a player completed relative to the fastest player at the moment the game
    /// ended. When the game is allowed to run past the first finisher, the score falls
    /// back to the ratio of observed/extrapolated execution times, which is the same
    /// quantity evaluated at the winner's finish instant.
    pub fn execution_scores(&self) -> Vec<f64> {
        let best = self
            .estimated_times
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if !best.is_finite() || best <= 0.0 {
            return vec![0.0; self.work_fractions.len()];
        }
        self.estimated_times
            .iter()
            .map(|t| {
                if t.is_finite() {
                    (best / t).min(1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::{ConstantInterference, InterferenceProfile};

    fn quiet_run(specs: Vec<ExecutionSpec>) -> ColocatedRun {
        let mut rng = SimRng::new(1);
        ColocatedRun::new(
            VmType::M5_8xlarge,
            SimTime::ZERO,
            specs,
            Box::new(ConstantInterference::quiet()),
            &mut rng,
        )
    }

    #[test]
    fn single_player_quiet_run_matches_base_time() {
        let mut run = quiet_run(vec![ExecutionSpec::new(100.0, 0.5)]);
        run.run_to_completion(10_000.0);
        let outcome = run.into_outcome();
        let t = outcome.observed_times()[0];
        // Only measurement noise (±5 % clamp) separates the observation from base time.
        assert!((t - 100.0).abs() < 6.0, "observed {t}");
        assert_eq!(outcome.winner(), 0);
    }

    #[test]
    fn faster_config_wins_under_shared_noise() {
        let mut rng = SimRng::new(7);
        let model = InterferenceProfile::typical().build(3);
        let mut run = ColocatedRun::new(
            VmType::M5_8xlarge,
            SimTime::from_seconds(500.0),
            vec![
                ExecutionSpec::new(200.0, 0.6),
                ExecutionSpec::new(400.0, 0.6),
            ],
            model,
            &mut rng,
        );
        run.run_to_completion(100_000.0);
        let outcome = run.into_outcome();
        assert_eq!(outcome.winner(), 0);
        assert!(outcome.observed_times()[0] < outcome.observed_times()[1]);
        let scores = outcome.execution_scores();
        assert_eq!(scores[0], 1.0);
        assert!(scores[1] < 1.0);
    }

    #[test]
    fn progress_is_monotone_and_bounded() {
        let mut run = quiet_run(vec![
            ExecutionSpec::new(50.0, 0.2),
            ExecutionSpec::new(75.0, 0.9),
        ]);
        let mut previous = [0.0, 0.0];
        for _ in 0..500 {
            run.step(1.0);
            for (i, p) in run.work_fractions().iter().enumerate() {
                assert!(*p >= previous[i], "progress must not decrease");
                assert!(*p <= 1.0, "progress must not exceed 1");
                previous[i] = *p;
            }
        }
        assert!(run.all_finished());
    }

    #[test]
    fn early_stop_produces_extrapolated_times() {
        let mut run = quiet_run(vec![
            ExecutionSpec::new(100.0, 0.2),
            ExecutionSpec::new(300.0, 0.2),
        ]);
        // Stop long before anything finishes.
        for _ in 0..20 {
            run.step(1.0);
        }
        assert!(!run.any_finished());
        let outcome = run.into_outcome();
        assert_eq!(outcome.finish_times()[0], None);
        let est = outcome.observed_times();
        assert!(est[0] > 50.0 && est[0] < 200.0, "estimate {est:?}");
        assert!(est[1] > est[0]);
    }

    #[test]
    fn contention_slows_down_crowded_games() {
        // Same spec run alone vs. packed with 31 co-runners: the crowded one must be slower.
        let spec = ExecutionSpec::new(100.0, 1.0);
        let mut alone = quiet_run(vec![spec]);
        alone.run_to_completion(10_000.0);
        let alone_t = alone.into_outcome().observed_times()[0];

        let mut crowded = quiet_run(vec![spec; 32]);
        crowded.run_to_completion(10_000.0);
        let crowded_t = crowded.into_outcome().observed_times()[0];
        assert!(
            crowded_t > alone_t * 1.1,
            "expected contention slowdown, alone={alone_t}, crowded={crowded_t}"
        );
    }

    #[test]
    fn overload_beyond_vcpus_time_shares() {
        let spec = ExecutionSpec::new(100.0, 0.0);
        let mut rng = SimRng::new(1);
        let mut run = ColocatedRun::new(
            VmType::M5Large, // only 2 vCPUs
            SimTime::ZERO,
            vec![spec; 4],
            Box::new(ConstantInterference::quiet()),
            &mut rng,
        );
        run.run_to_completion(10_000.0);
        let outcome = run.into_outcome();
        // 4 players on 2 cores -> roughly 2x slowdown even with zero sensitivity.
        assert!(outcome.observed_times()[0] > 180.0);
    }

    #[test]
    fn ranking_sorted_by_work_done() {
        let mut run = quiet_run(vec![
            ExecutionSpec::new(300.0, 0.1),
            ExecutionSpec::new(100.0, 0.1),
            ExecutionSpec::new(200.0, 0.1),
        ]);
        for _ in 0..50 {
            run.step(1.0);
        }
        let outcome = run.into_outcome();
        assert_eq!(outcome.ranking(), vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn empty_game_rejected() {
        quiet_run(Vec::new());
    }
}
