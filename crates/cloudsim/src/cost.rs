//! Core-hour and wall-clock accounting for tuning runs.

use crate::vm::VmType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// A quantity of compute, measured in core-hours (`vCPUs × hours`).
///
/// Core-hours are the resource metric used by Fig. 12 and Fig. 14 of the paper, where
/// every tuner's tuning cost is expressed as a percentage of the exhaustive search.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct CoreHours(f64);

impl CoreHours {
    /// Zero compute.
    pub const ZERO: CoreHours = CoreHours(0.0);

    /// Creates a quantity from a raw core-hour value.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or not finite.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "core-hours must be finite and non-negative"
        );
        Self(value)
    }

    /// Computes the core-hours consumed by occupying `cores` cores for
    /// `wall_clock_seconds` seconds.
    pub fn from_usage(cores: usize, wall_clock_seconds: f64) -> Self {
        Self::new(cores as f64 * wall_clock_seconds.max(0.0) / 3600.0)
    }

    /// The raw value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// This quantity as a percentage of `reference`. Returns 0 if the reference is zero.
    pub fn percent_of(&self, reference: CoreHours) -> f64 {
        if reference.0 <= f64::EPSILON {
            0.0
        } else {
            100.0 * self.0 / reference.0
        }
    }
}

impl Add for CoreHours {
    type Output = CoreHours;

    fn add(self, rhs: CoreHours) -> CoreHours {
        CoreHours(self.0 + rhs.0)
    }
}

impl AddAssign for CoreHours {
    fn add_assign(&mut self, rhs: CoreHours) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for CoreHours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} core-hours", self.0)
    }
}

/// A point-in-time copy of a [`CostTracker`]'s counters, taken with
/// [`CostTracker::snapshot`].
///
/// Snapshots turn the "remember the counters at phase start, subtract at phase end"
/// bookkeeping that used to be hand-rolled at every call site into one API:
///
/// ```
/// use dg_cloudsim::{CostTracker, VmType};
/// let mut tracker = CostTracker::new();
/// let before = tracker.snapshot();
/// tracker.charge_serial(VmType::M5_8xlarge, 3600.0);
/// let delta = before.delta(&tracker);
/// assert!((delta.core_hours - 32.0).abs() < 1e-9);
/// assert_eq!(delta.runs, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostSnapshot {
    core_hours: f64,
    wall_clock_seconds: f64,
    runs: u64,
}

impl CostSnapshot {
    /// The resources consumed between this snapshot and `now`.
    ///
    /// The subtraction is performed field by field exactly as the former hand-rolled
    /// call sites did, so refactoring onto snapshots is bit-for-bit neutral.
    pub fn delta(&self, now: &CostTracker) -> CostDelta {
        CostDelta {
            core_hours: now.core_hours() - self.core_hours,
            wall_clock_seconds: now.wall_clock_seconds() - self.wall_clock_seconds,
            runs: now.runs() - self.runs,
        }
    }
}

/// The resources consumed over an interval, as reported by [`CostSnapshot::delta`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostDelta {
    /// Core-hours consumed in the interval.
    pub core_hours: f64,
    /// Wall-clock seconds elapsed in the interval.
    pub wall_clock_seconds: f64,
    /// Runs/games recorded in the interval.
    pub runs: u64,
}

/// Accumulates the resources consumed by a tuning session.
///
/// Wall-clock time and core-hours are tracked separately because games can be played in
/// parallel on different VMs: parallel games add their core-hours but only the longest of
/// them extends the wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostTracker {
    core_hours: CoreHours,
    wall_clock_seconds: f64,
    runs: u64,
}

impl CostTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a single run (or game) that occupied the whole VM for
    /// `wall_clock_seconds`, advancing the wall clock.
    pub fn charge_serial(&mut self, vm: VmType, wall_clock_seconds: f64) {
        self.core_hours += CoreHours::from_usage(vm.vcpus(), wall_clock_seconds);
        self.wall_clock_seconds += wall_clock_seconds.max(0.0);
        self.runs += 1;
    }

    /// Records a batch of games that ran concurrently on separate VMs of the same type:
    /// all of them are charged in core-hours, but the wall clock only advances by the
    /// longest one.
    pub fn charge_parallel(&mut self, vm: VmType, wall_clock_seconds: &[f64]) {
        let mut max_elapsed: f64 = 0.0;
        for elapsed in wall_clock_seconds {
            self.core_hours += CoreHours::from_usage(vm.vcpus(), *elapsed);
            max_elapsed = max_elapsed.max(*elapsed);
            self.runs += 1;
        }
        self.wall_clock_seconds += max_elapsed.max(0.0);
    }

    /// Captures the current counters so the resources consumed by a sub-phase can be
    /// measured with [`CostSnapshot::delta`] afterwards.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            core_hours: self.core_hours(),
            wall_clock_seconds: self.wall_clock_seconds(),
            runs: self.runs(),
        }
    }

    /// Merges another tracker into this one (used when sub-phases account independently).
    pub fn merge(&mut self, other: &CostTracker) {
        self.core_hours += other.core_hours;
        self.wall_clock_seconds += other.wall_clock_seconds;
        self.runs += other.runs;
    }

    /// Total compute consumed.
    pub fn core_hours(&self) -> f64 {
        self.core_hours.value()
    }

    /// Total compute consumed, as a typed quantity.
    pub fn core_hours_quantity(&self) -> CoreHours {
        self.core_hours
    }

    /// Total wall-clock seconds of tuning.
    pub fn wall_clock_seconds(&self) -> f64 {
        self.wall_clock_seconds
    }

    /// Number of runs/games recorded.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Dollar cost at the VM's on-demand hourly price (single-VM approximation).
    pub fn dollar_cost(&self, vm: VmType) -> f64 {
        self.core_hours.value() / vm.vcpus() as f64 * vm.hourly_price_usd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_usage_scales_with_cores_and_time() {
        let a = CoreHours::from_usage(32, 3600.0);
        assert!((a.value() - 32.0).abs() < 1e-12);
        let b = CoreHours::from_usage(2, 1800.0);
        assert!((b.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percent_of_reference() {
        let a = CoreHours::new(5.0);
        let b = CoreHours::new(50.0);
        assert!((a.percent_of(b) - 10.0).abs() < 1e-12);
        assert_eq!(a.percent_of(CoreHours::ZERO), 0.0);
    }

    #[test]
    fn serial_charges_advance_wall_clock() {
        let mut tracker = CostTracker::new();
        tracker.charge_serial(VmType::M5_8xlarge, 100.0);
        tracker.charge_serial(VmType::M5_8xlarge, 200.0);
        assert_eq!(tracker.wall_clock_seconds(), 300.0);
        assert_eq!(tracker.runs(), 2);
        assert!((tracker.core_hours() - 32.0 * 300.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_charges_advance_by_longest() {
        let mut tracker = CostTracker::new();
        tracker.charge_parallel(VmType::M5_8xlarge, &[100.0, 250.0, 50.0]);
        assert_eq!(tracker.wall_clock_seconds(), 250.0);
        assert_eq!(tracker.runs(), 3);
        assert!((tracker.core_hours() - 32.0 * 400.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = CostTracker::new();
        a.charge_serial(VmType::M5Large, 100.0);
        let mut b = CostTracker::new();
        b.charge_serial(VmType::M5Large, 300.0);
        a.merge(&b);
        assert_eq!(a.runs(), 2);
        assert_eq!(a.wall_clock_seconds(), 400.0);
    }

    #[test]
    fn dollar_cost_uses_hourly_price() {
        let mut tracker = CostTracker::new();
        tracker.charge_serial(VmType::M5_8xlarge, 3600.0);
        let cost = tracker.dollar_cost(VmType::M5_8xlarge);
        assert!((cost - VmType::M5_8xlarge.hourly_price_usd()).abs() < 1e-9);
    }

    #[test]
    fn snapshot_delta_measures_intervals() {
        let mut tracker = CostTracker::new();
        tracker.charge_serial(VmType::M5_8xlarge, 100.0);
        let snapshot = tracker.snapshot();
        let zero = snapshot.delta(&tracker);
        assert_eq!(zero.core_hours, 0.0);
        assert_eq!(zero.runs, 0);
        tracker.charge_parallel(VmType::M5_8xlarge, &[50.0, 80.0]);
        let delta = snapshot.delta(&tracker);
        assert!((delta.core_hours - 32.0 * 130.0 / 3600.0).abs() < 1e-9);
        assert_eq!(delta.wall_clock_seconds, 80.0);
        assert_eq!(delta.runs, 2);
    }

    #[test]
    fn display_format() {
        assert_eq!(CoreHours::new(1.234).to_string(), "1.23 core-hours");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_core_hours_rejected() {
        CoreHours::new(-1.0);
    }
}
