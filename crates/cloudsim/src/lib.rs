//! A simulated, interference-prone cloud execution environment.
//!
//! The DarwinGame paper tunes real applications on AWS virtual machines whose performance
//! is perturbed by uncontrollable background tenants. This crate replaces that platform
//! with a deterministic simulator that preserves the properties the tuners actually react
//! to:
//!
//! * **Time-varying interference.** A composite noise process (smooth value noise +
//!   Markov-style regimes + occasional bursts) produces an interference level for every
//!   instant of simulated time. Tuning at different wall-clock times therefore observes
//!   different noise, exactly the effect behind Fig. 3 of the paper.
//! * **Per-configuration sensitivity.** Each execution carries an interference
//!   *sensitivity*; the observed slowdown is `1 + sensitivity * effective_interference`,
//!   so highly optimised configurations can be more fragile than slower ones (Fig. 2).
//! * **Co-location.** Multiple executions launched in the same [`ColocatedRun`] share the
//!   *same* interference samples and additionally contend with each other, which is the
//!   physical mechanism DarwinGame exploits to rank configurations relatively.
//! * **Cost accounting.** Every run is charged in core-hours
//!   (`vCPUs × wall-clock`), the resource metric of Fig. 12 and Fig. 14.
//!
//! # Quick example
//!
//! ```
//! use dg_cloudsim::{CloudEnvironment, ExecutionSpec, InterferenceProfile, VmType};
//!
//! let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 42);
//! let fast = ExecutionSpec::new(230.0, 0.8);
//! let slow = ExecutionSpec::new(600.0, 0.2);
//!
//! // A co-located "game": both specs see identical background noise.
//! let outcome = cloud.run_colocated_to_completion(&[fast, slow]);
//! assert!(outcome.observed_times()[0] < outcome.observed_times()[1]);
//! assert!(cloud.cost().core_hours() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cloud;
mod colocation;
mod cost;
mod fastpath;
mod interference;
mod record;
mod rng;
mod spec;
mod time;
mod vm;

pub use cloud::{
    CloudEnvironment, DedicatedEnvironment, GameTermination, ObservedRun, SimulatedPlay,
    MAX_RUN_MULTIPLIER,
};
pub use colocation::{ColocatedRun, ColocationOutcome, PlayerProgress};
pub use cost::{CoreHours, CostDelta, CostSnapshot, CostTracker};
pub use fastpath::{fast_path_enabled, set_fast_path};
pub use interference::{
    BurstNoise, CompositeInterference, ConstantInterference, InterferenceModel,
    InterferenceProfile, InterferenceSampler, RegimeNoise, ValueNoise,
};
pub use record::{RunKind, RunLog, RunRecord};
pub use rng::{hash_unit, mix, SimRng};
pub use spec::ExecutionSpec;
pub use time::SimTime;
pub use vm::VmType;
