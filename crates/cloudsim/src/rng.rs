//! Deterministic, splittable random number generation.
//!
//! Every stochastic component of the simulator and the tuners derives its randomness from
//! a [`SimRng`] created from an explicit seed. Sub-streams are derived by hashing the
//! parent seed with a label, so independent components (interference process, per-player
//! jitter, tuner exploration) never consume from the same stream and experiments remain
//! reproducible regardless of evaluation order.

/// The core generator behind [`SimRng`]: xoshiro256++, seeded through SplitMix64.
///
/// Implemented locally (rather than via the `rand` crate) so the simulator has zero
/// external dependencies and the exact value streams are pinned by this repository —
/// a `rand` version bump can never silently change every experiment.
#[derive(Debug, Clone)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed into the full 256-bit state with SplitMix64, the
    /// seeding procedure recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic random source with cheap sub-stream derivation.
///
/// ```
/// use dg_cloudsim::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.uniform(), b.uniform());
///
/// // Sub-streams with different labels are decorrelated but reproducible.
/// let x = SimRng::new(7).derive("interference").uniform();
/// let y = SimRng::new(7).derive("interference").uniform();
/// assert_eq!(x, y);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: Xoshiro256PlusPlus,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            inner: Xoshiro256PlusPlus::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator identified by a string label.
    pub fn derive(&self, label: &str) -> SimRng {
        SimRng::new(mix(self.seed, hash_label(label)))
    }

    /// Derives an independent generator identified by an integer index.
    pub fn derive_index(&self, index: u64) -> SimRng {
        SimRng::new(mix(self.seed, index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // Top 53 bits form the mantissa of a double in [0, 1).
        (self.inner.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform_range requires lo < hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw.
        ((self.inner.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        // Box–Muller transform; uniform() never returns exactly 0 is not guaranteed, so
        // clamp away from zero to keep ln() finite.
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, values: &mut [T]) {
        if values.len() < 2 {
            return;
        }
        for i in (1..values.len()).rev() {
            let j = self.index(i + 1);
            values.swap(i, j);
        }
    }

    /// Samples an index in `[0, weights.len())` with probability proportional to the
    /// weights. Non-positive weights are treated as zero; if all weights are zero the
    /// index is chosen uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index requires weights");
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 {
            return self.index(weights.len());
        }
        let mut target = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Next raw 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.inner.next_u64() >> 32) as u32
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.inner.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic stateless hash of `(seed, position)` to a uniform `[0, 1)` value.
///
/// Used by the interference processes (and by the synthetic performance surfaces in the
/// `dg-workloads` crate) for cheap random access to noise values at arbitrary positions
/// without stepping an RNG: a single call is a handful of integer multiplications,
/// orders of magnitude cheaper than seeding a full generator.
pub fn hash_unit(seed: u64, position: u64) -> f64 {
    let h = mix(seed, position);
    // Use the top 53 bits to form a double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic 64-bit mixing function (SplitMix64 finalizer) used to derive
/// independent hash streams from a seed and a label/position.
pub fn mix(a: u64, b: u64) -> u64 {
    // SplitMix64-style finalizer over the combined value.
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_label(label: &str) -> u64 {
    // FNV-1a over the label bytes.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let x = SimRng::new(1).derive("a").next_u64();
        let y = SimRng::new(1).derive("b").next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn derive_index_is_stable() {
        let x = SimRng::new(9).derive_index(4).next_u64();
        let y = SimRng::new(9).derive_index(4).next_u64();
        assert_eq!(x, y);
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = SimRng::new(11);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.normal()).collect();
        let mean = dg_stats::mean(&samples);
        let sd = dg_stats::std_dev(&samples);
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((sd - 1.0).abs() < 0.05, "std dev {sd} too far from 1");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = SimRng::new(3);
        let weights = [0.0, 0.0, 10.0, 0.1];
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[3] * 10);
    }

    #[test]
    fn weighted_index_all_zero_falls_back_to_uniform() {
        let mut rng = SimRng::new(8);
        let weights = [0.0, 0.0, 0.0];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.weighted_index(&weights)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SimRng::new(2);
        let mut values: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn hash_unit_deterministic_and_bounded() {
        for pos in 0..100 {
            let v = hash_unit(42, pos);
            assert!((0.0..1.0).contains(&v));
            assert_eq!(v, hash_unit(42, pos));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
