//! The catalog of virtual machine instance types used in the paper's evaluation.
//!
//! The main experiments run on `m5.8xlarge`; Fig. 15 sweeps across additional sizes and
//! classes. Smaller VM sizes host more co-tenants per physical machine, so they expose
//! the tenant to proportionally more interference; specialised classes (compute-,
//! memory-, storage-optimised) shift both the baseline speed and the interference level.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An AWS-style VM instance type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum VmType {
    /// General purpose, 2 vCPUs.
    M5Large,
    /// General purpose, 8 vCPUs.
    M5_2xlarge,
    /// General purpose, 32 vCPUs (the paper's main testbed).
    M5_8xlarge,
    /// General purpose, 64 vCPUs.
    M5_16xlarge,
    /// General purpose, 96 vCPUs.
    M5_24xlarge,
    /// Compute optimised, 36 vCPUs.
    C5_9xlarge,
    /// Memory optimised, 32 vCPUs.
    R5_8xlarge,
    /// Storage optimised, 32 vCPUs.
    I3_8xlarge,
}

impl VmType {
    /// Every VM type evaluated in the paper, in the order of Fig. 15.
    pub const ALL: [VmType; 8] = [
        VmType::M5Large,
        VmType::M5_2xlarge,
        VmType::M5_8xlarge,
        VmType::M5_16xlarge,
        VmType::M5_24xlarge,
        VmType::C5_9xlarge,
        VmType::R5_8xlarge,
        VmType::I3_8xlarge,
    ];

    /// Number of virtual CPUs, which is also the default number of players `P` that play
    /// a game together on this VM.
    pub fn vcpus(&self) -> usize {
        match self {
            VmType::M5Large => 2,
            VmType::M5_2xlarge => 8,
            VmType::M5_8xlarge => 32,
            VmType::M5_16xlarge => 64,
            VmType::M5_24xlarge => 96,
            VmType::C5_9xlarge => 36,
            VmType::R5_8xlarge => 32,
            VmType::I3_8xlarge => 32,
        }
    }

    /// Multiplier applied to the ambient interference level.
    ///
    /// Smaller instances share a physical host with more third-party tenants, so they see
    /// more noise; very large instances occupy most of a host and see less.
    pub fn interference_factor(&self) -> f64 {
        match self {
            VmType::M5Large => 1.9,
            VmType::M5_2xlarge => 1.45,
            VmType::M5_8xlarge => 1.0,
            VmType::M5_16xlarge => 0.75,
            VmType::M5_24xlarge => 0.6,
            VmType::C5_9xlarge => 0.95,
            VmType::R5_8xlarge => 1.05,
            VmType::I3_8xlarge => 1.15,
        }
    }

    /// Multiplier applied to the *dedicated-environment* execution time of a
    /// configuration when it runs on this VM (hardware speed difference relative to the
    /// m5.8xlarge baseline).
    pub fn speed_factor(&self) -> f64 {
        match self {
            VmType::M5Large => 1.25,
            VmType::M5_2xlarge => 1.1,
            VmType::M5_8xlarge => 1.0,
            VmType::M5_16xlarge => 0.97,
            VmType::M5_24xlarge => 0.95,
            VmType::C5_9xlarge => 0.88,
            VmType::R5_8xlarge => 1.02,
            VmType::I3_8xlarge => 1.05,
        }
    }

    /// On-demand price per hour in USD (approximate us-east-1 figures), used only for
    /// the cost-amortisation discussion in the evaluation.
    pub fn hourly_price_usd(&self) -> f64 {
        match self {
            VmType::M5Large => 0.096,
            VmType::M5_2xlarge => 0.384,
            VmType::M5_8xlarge => 1.536,
            VmType::M5_16xlarge => 3.072,
            VmType::M5_24xlarge => 4.608,
            VmType::C5_9xlarge => 1.53,
            VmType::R5_8xlarge => 2.016,
            VmType::I3_8xlarge => 2.496,
        }
    }

    /// Parses a canonical AWS-style name (see [`name`](Self::name)) back into a VM
    /// type; `None` for names outside the catalog.
    pub fn from_name(name: &str) -> Option<VmType> {
        Self::ALL.into_iter().find(|vm| vm.name() == name)
    }

    /// The canonical AWS-style name, e.g. `"m5.8xlarge"`.
    pub fn name(&self) -> &'static str {
        match self {
            VmType::M5Large => "m5.large",
            VmType::M5_2xlarge => "m5.2xlarge",
            VmType::M5_8xlarge => "m5.8xlarge",
            VmType::M5_16xlarge => "m5.16xlarge",
            VmType::M5_24xlarge => "m5.24xlarge",
            VmType::C5_9xlarge => "c5.9xlarge",
            VmType::R5_8xlarge => "r5.8xlarge",
            VmType::I3_8xlarge => "i3.8xlarge",
        }
    }
}

impl fmt::Display for VmType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Default for VmType {
    /// The paper's main testbed instance.
    fn default() -> Self {
        VmType::M5_8xlarge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_contains_all_paper_vms() {
        assert_eq!(VmType::ALL.len(), 8);
        let names: Vec<&str> = VmType::ALL.iter().map(|v| v.name()).collect();
        assert!(names.contains(&"m5.8xlarge"));
        assert!(names.contains(&"c5.9xlarge"));
        assert!(names.contains(&"i3.8xlarge"));
    }

    #[test]
    fn baseline_vm_matches_paper_setup() {
        let vm = VmType::default();
        assert_eq!(vm, VmType::M5_8xlarge);
        assert_eq!(vm.vcpus(), 32);
        assert_eq!(vm.interference_factor(), 1.0);
        assert_eq!(vm.speed_factor(), 1.0);
    }

    #[test]
    fn smaller_vms_have_more_interference() {
        assert!(VmType::M5Large.interference_factor() > VmType::M5_8xlarge.interference_factor());
        assert!(
            VmType::M5_8xlarge.interference_factor() > VmType::M5_24xlarge.interference_factor()
        );
    }

    #[test]
    fn vcpus_monotone_within_m5_family() {
        assert!(VmType::M5Large.vcpus() < VmType::M5_2xlarge.vcpus());
        assert!(VmType::M5_2xlarge.vcpus() < VmType::M5_8xlarge.vcpus());
        assert!(VmType::M5_8xlarge.vcpus() < VmType::M5_16xlarge.vcpus());
        assert!(VmType::M5_16xlarge.vcpus() < VmType::M5_24xlarge.vcpus());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(VmType::C5_9xlarge.to_string(), "c5.9xlarge");
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for vm in VmType::ALL {
            assert_eq!(VmType::from_name(vm.name()), Some(vm));
        }
        assert_eq!(VmType::from_name("t2.nano"), None);
    }

    #[test]
    fn prices_scale_with_size() {
        assert!(VmType::M5Large.hourly_price_usd() < VmType::M5_24xlarge.hourly_price_usd());
    }
}
