//! Execution specifications: what the cloud simulator needs to know about one run.

use serde::{Deserialize, Serialize};

/// The intrinsic performance characteristics of one application execution with one
/// tuning configuration.
///
/// The simulator never looks at the tuning parameters themselves; the `workloads` crate
/// maps a configuration to an `ExecutionSpec`, and everything downstream (noise,
/// co-location, progress tracking) operates on these two numbers:
///
/// * `base_time` — execution time in seconds on a dedicated, interference-free node, and
/// * `sensitivity` — how strongly interference inflates the execution time
///   (`observed = base * (1 + sensitivity * effective_interference)`).
///
/// ```
/// use dg_cloudsim::ExecutionSpec;
/// let spec = ExecutionSpec::new(230.0, 0.8);
/// assert_eq!(spec.base_time(), 230.0);
/// assert!((spec.slowdown(0.5) - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionSpec {
    base_time: f64,
    sensitivity: f64,
}

impl ExecutionSpec {
    /// Creates a spec from a dedicated-environment execution time (seconds) and an
    /// interference sensitivity (typically in `[0, 1.5]`).
    ///
    /// # Panics
    ///
    /// Panics if `base_time` is not strictly positive and finite, or if `sensitivity` is
    /// negative or not finite.
    pub fn new(base_time: f64, sensitivity: f64) -> Self {
        assert!(
            base_time.is_finite() && base_time > 0.0,
            "base_time must be positive and finite, got {base_time}"
        );
        assert!(
            sensitivity.is_finite() && sensitivity >= 0.0,
            "sensitivity must be non-negative and finite, got {sensitivity}"
        );
        Self {
            base_time,
            sensitivity,
        }
    }

    /// Execution time on a dedicated (interference-free) node, in seconds.
    pub fn base_time(&self) -> f64 {
        self.base_time
    }

    /// Interference sensitivity.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The multiplicative slowdown experienced under an effective interference level.
    pub fn slowdown(&self, effective_interference: f64) -> f64 {
        1.0 + self.sensitivity * effective_interference.max(0.0)
    }

    /// Instantaneous progress rate (fraction of total work per second) under an effective
    /// interference level.
    pub fn progress_rate(&self, effective_interference: f64) -> f64 {
        1.0 / (self.base_time * self.slowdown(effective_interference))
    }

    /// Returns a copy with the base time scaled by `factor` (used for VM speed factors).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive and finite"
        );
        Self::new(self.base_time * factor, self.sensitivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_is_one_without_interference() {
        let spec = ExecutionSpec::new(100.0, 0.7);
        assert_eq!(spec.slowdown(0.0), 1.0);
        assert_eq!(spec.progress_rate(0.0), 1.0 / 100.0);
    }

    #[test]
    fn slowdown_grows_with_interference_and_sensitivity() {
        let fragile = ExecutionSpec::new(100.0, 1.0);
        let robust = ExecutionSpec::new(100.0, 0.1);
        assert!(fragile.slowdown(0.5) > robust.slowdown(0.5));
        assert!(fragile.progress_rate(0.5) < robust.progress_rate(0.5));
    }

    #[test]
    fn negative_interference_is_clamped() {
        let spec = ExecutionSpec::new(50.0, 0.5);
        assert_eq!(spec.slowdown(-3.0), 1.0);
    }

    #[test]
    fn scaled_changes_base_time_only() {
        let spec = ExecutionSpec::new(200.0, 0.4).scaled(0.5);
        assert_eq!(spec.base_time(), 100.0);
        assert_eq!(spec.sensitivity(), 0.4);
    }

    #[test]
    #[should_panic(expected = "base_time must be positive")]
    fn zero_base_time_rejected() {
        ExecutionSpec::new(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "sensitivity must be non-negative")]
    fn negative_sensitivity_rejected() {
        ExecutionSpec::new(10.0, -0.1);
    }
}
