//! Process-wide toggle for the batched/memoized fast execution path.
//!
//! The simulator ships two implementations of every hot operation: the original
//! reference path (boxed interference models, per-pass loops, fresh allocations) and a
//! fused fast path (flat [`crate::InterferenceSampler`], reusable scratch buffers,
//! single-pass stepping). The two are **bit-identical** in every output — the fast path
//! is an accounting-identical rewrite, not an approximation — so the toggle only
//! changes speed, never results.
//!
//! The gate exists so benches and CI can measure both modes from one binary:
//!
//! * `DG_FORCE_UNBATCHED=1` in the environment starts the process with the fast path
//!   disabled (the reference path runs everywhere);
//! * [`set_fast_path`] flips the mode at runtime, letting a bench time both paths
//!   in-process and assert their reports are byte-identical.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let forced_off = std::env::var("DG_FORCE_UNBATCHED")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        AtomicBool::new(!forced_off)
    })
}

/// True when the fused fast path should be used (the default unless
/// `DG_FORCE_UNBATCHED=1` is set or [`set_fast_path`]`(false)` was called).
#[inline]
pub fn fast_path_enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Enables or disables the fast path for the whole process.
///
/// Safe to flip at any point: both paths produce bit-identical results, so concurrent
/// readers only ever observe a speed difference.
pub fn set_fast_path(enabled: bool) {
    flag().store(enabled, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_round_trips() {
        let initial = fast_path_enabled();
        set_fast_path(false);
        assert!(!fast_path_enabled());
        set_fast_path(true);
        assert!(fast_path_enabled());
        set_fast_path(initial);
    }
}
