//! Simulated wall-clock time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in seconds since the start of the simulation.
///
/// `SimTime` is a thin newtype over `f64` seconds; it exists so that simulated timestamps
/// cannot be confused with durations, interference levels, or observed execution times.
///
/// ```
/// use dg_cloudsim::SimTime;
/// let t = SimTime::from_seconds(90.0) + 30.0;
/// assert_eq!(t.as_seconds(), 120.0);
/// assert_eq!(t.as_minutes(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a timestamp from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    pub fn from_seconds(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimTime must be finite and non-negative, got {seconds}"
        );
        Self(seconds)
    }

    /// Creates a timestamp from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_seconds(hours * 3600.0)
    }

    /// Seconds since the simulation origin.
    pub fn as_seconds(&self) -> f64 {
        self.0
    }

    /// Minutes since the simulation origin.
    pub fn as_minutes(&self) -> f64 {
        self.0 / 60.0
    }

    /// Hours since the simulation origin.
    pub fn as_hours(&self) -> f64 {
        self.0 / 3600.0
    }

    /// Elapsed seconds from `earlier` to `self`; zero if `earlier` is later.
    pub fn seconds_since(&self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, seconds: f64) -> SimTime {
        SimTime::from_seconds(self.0 + seconds)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, seconds: f64) {
        *self = *self + seconds;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;

    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trip() {
        let t = SimTime::from_hours(1.5);
        assert_eq!(t.as_seconds(), 5400.0);
        assert_eq!(t.as_minutes(), 90.0);
        assert_eq!(t.as_hours(), 1.5);
    }

    #[test]
    fn add_and_subtract() {
        let a = SimTime::from_seconds(100.0);
        let b = a + 50.0;
        assert_eq!(b - a, 50.0);
        assert_eq!(b.seconds_since(a), 50.0);
        assert_eq!(a.seconds_since(b), 0.0);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += 10.0;
        t += 5.0;
        assert_eq!(t.as_seconds(), 15.0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SimTime::from_seconds(12.34).to_string(), "12.3s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        SimTime::from_seconds(-1.0);
    }
}
