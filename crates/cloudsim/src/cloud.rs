//! The top-level cloud and dedicated execution environments.

use crate::colocation::{
    ColocatedRun, ColocationOutcome, CONTENTION_COEFF, MEASUREMENT_NOISE_STD, PLAYER_JITTER_STD,
};
use crate::cost::CostTracker;
use crate::fastpath::fast_path_enabled;
use crate::interference::{InterferenceModel, InterferenceProfile, InterferenceSampler};
use crate::record::{RunKind, RunLog, RunRecord};
use crate::rng::SimRng;
use crate::spec::ExecutionSpec;
use crate::time::SimTime;
use crate::vm::VmType;
use serde::{Deserialize, Serialize};

/// Safety cap on simulated game length, expressed as a multiple of the slowest player's
/// dedicated execution time. Prevents run-away integration if a pathological spec is fed
/// to the simulator. Public because execution backends that drive games themselves
/// (`dg-exec`) must apply the exact same cap to stay bit-compatible with committed runs.
pub const MAX_RUN_MULTIPLIER: f64 = 64.0;

/// The observation returned by a committed single-configuration run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedRun {
    /// Observed execution time in seconds (including interference effects).
    pub observed_time: f64,
    /// Simulated time at which the run started.
    pub started_at: SimTime,
    /// Wall-clock seconds the run occupied (and was charged for) on its node. Slightly
    /// larger than `observed_time` because the simulator integrates in discrete steps
    /// and charges whole steps; this is the exact value the cost tracker saw, which
    /// record/replay execution backends need to reproduce accounting bit for bit.
    pub elapsed: f64,
}

/// Game-termination rules for the fused fast path, mirroring the execution layer's
/// `GameRules` (`dg-exec` owns the user-facing type; the simulator needs the same three
/// numbers without a dependency cycle).
///
/// These are the game-termination rules of Fig. 5 of the paper: the game runs until the
/// fastest player completes, or — when early termination is enabled and the leader has
/// completed at least `min_leader_progress` of its work — until the work-done gap
/// between the leader and the runner-up exceeds `work_done_deviation`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameTermination {
    /// Stop the game early when the leader is far enough ahead.
    pub early_termination: bool,
    /// Work-done deviation `d` that triggers early termination.
    pub work_done_deviation: f64,
    /// Minimum leader progress before early termination is allowed.
    pub min_leader_progress: f64,
}

/// The outcome of a fused fast-path game ([`CloudEnvironment::play_game_fast`]):
/// bit-identical, field for field, to the reference path that steps a boxed
/// [`ColocatedRun`] under the same rules.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedPlay {
    /// Simulated time at which the game started.
    pub start: SimTime,
    /// Wall-clock seconds the game occupied the node.
    pub elapsed: f64,
    /// Observed (or extrapolated) execution time per player, in player order.
    pub observed_times: Vec<f64>,
    /// Execution score per player (work done relative to the best player, in `[0, 1]`).
    pub execution_scores: Vec<f64>,
    /// Whether the game was stopped by the early-termination rule.
    pub early_terminated: bool,
}

/// Reusable per-game buffers for the fused fast path: one flat `Vec<f64>` per hot
/// per-player quantity (struct-of-arrays), cleared and refilled per game so steady-state
/// games allocate nothing but their returned observation vectors.
#[derive(Debug, Default)]
struct GameScratch {
    /// VM-scaled base time per player (the SoA split of `ExecutionSpec` that lets the
    /// rate pass vectorise).
    base: Vec<f64>,
    /// Sensitivity per player.
    sens: Vec<f64>,
    jitter: Vec<f64>,
    noise: Vec<f64>,
    /// Per-step progress rate per player, refilled by the branch-free rate pass.
    rate: Vec<f64>,
    progress: Vec<f64>,
    /// Finish time per player; NaN = not finished (the fast-path stand-in for
    /// `Option<f64>` that keeps the array flat).
    finish: Vec<f64>,
}

/// A shared, interference-prone cloud node on which tuning is performed.
///
/// The environment owns a simulated wall clock, an interference model for its node, a
/// cost tracker, and a run log. All tuners (baselines and DarwinGame) evaluate
/// configurations exclusively through this type, so they are all exposed to the same
/// noise statistics.
pub struct CloudEnvironment {
    vm: VmType,
    profile: InterferenceProfile,
    seed: u64,
    node_seed: u64,
    model: Box<dyn InterferenceModel>,
    /// Flat memoizing sampler of the same node signal as `model`, bit-identical to it;
    /// the fused fast path reads interference through this instead of the box.
    sampler: InterferenceSampler,
    clock: SimTime,
    cost: CostTracker,
    rng: SimRng,
    log: RunLog,
    scratch: GameScratch,
}

impl std::fmt::Debug for CloudEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudEnvironment")
            .field("vm", &self.vm)
            .field("clock", &self.clock)
            .field("core_hours", &self.cost.core_hours())
            .field("runs", &self.log.len())
            .finish()
    }
}

impl CloudEnvironment {
    /// Creates a cloud environment on the given VM type with the given interference
    /// profile. The `seed` controls both the node's noise realisation and all
    /// per-game jitter, so two environments with the same arguments behave identically.
    pub fn new(vm: VmType, profile: InterferenceProfile, seed: u64) -> Self {
        let rng = SimRng::new(seed);
        let node_seed = rng.derive("node").seed();
        let model = profile.build(node_seed);
        let sampler = profile.sampler(node_seed);
        Self {
            vm,
            profile,
            seed,
            node_seed,
            model,
            sampler,
            clock: SimTime::ZERO,
            cost: CostTracker::new(),
            rng: rng.derive("games"),
            log: RunLog::new(),
            scratch: GameScratch::default(),
        }
    }

    /// The VM type this environment simulates.
    pub fn vm(&self) -> VmType {
        self.vm
    }

    /// The interference profile of the node.
    pub fn profile(&self) -> &InterferenceProfile {
        &self.profile
    }

    /// The root seed the environment was constructed with. Two environments on the same
    /// VM type and profile with the same seed behave identically, so the seed is the
    /// identity of the environment's entire noise realisation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The current simulated wall-clock time.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Moves the wall clock to `t` (used to start tuning sessions at different times of
    /// day, as in Fig. 3).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current clock.
    pub fn set_clock(&mut self, t: SimTime) {
        assert!(
            t.as_seconds() >= self.clock.as_seconds(),
            "the simulated clock cannot move backwards"
        );
        self.clock = t;
    }

    /// Resources consumed so far.
    pub fn cost(&self) -> &CostTracker {
        &self.cost
    }

    /// Audit log of committed runs.
    pub fn run_log(&self) -> &RunLog {
        &self.log
    }

    /// Default number of players per game on this VM (its vCPU count), the paper's `P`.
    pub fn players_per_game(&self) -> usize {
        self.vm.vcpus()
    }

    /// The ambient interference level at time `t` (before VM scaling); exposed for
    /// calibration tests and plotting.
    pub fn interference_level(&self, t: SimTime) -> f64 {
        self.model.level(t)
    }

    /// Starts a co-located game of the given configurations at the current clock.
    ///
    /// The returned [`ColocatedRun`] is independent of the environment; once stepping is
    /// done, pass its outcome to [`commit`](Self::commit) (or
    /// [`commit_parallel`](Self::commit_parallel)) to account for its cost and advance
    /// the clock.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn start_colocated(&mut self, specs: &[ExecutionSpec]) -> ColocatedRun {
        assert!(!specs.is_empty(), "a game needs at least one player");
        let scaled: Vec<ExecutionSpec> = specs
            .iter()
            .map(|s| s.scaled(self.vm.speed_factor()))
            .collect();
        ColocatedRun::new(
            self.vm,
            self.clock,
            scaled,
            self.profile.build(self.node_seed),
            &mut self.rng,
        )
    }

    /// Accounts for a finished game and advances the wall clock by its elapsed time.
    pub fn commit(&mut self, outcome: &ColocationOutcome) {
        self.commit_parts(outcome.players(), outcome.start_time(), outcome.elapsed());
    }

    /// [`commit`](Self::commit) from the raw accounting triple `(players, start,
    /// elapsed)` instead of a full [`ColocationOutcome`].
    ///
    /// Execution backends that did not resimulate the game (trace replay, memoised
    /// hits) only carry these three numbers; charging through the same code path keeps
    /// their cost accounting bit-identical to a live simulation.
    pub fn commit_parts(&mut self, players: usize, start: SimTime, elapsed: f64) {
        self.cost.charge_serial(self.vm, elapsed);
        self.clock += elapsed;
        self.log.push(RunRecord {
            kind: if players == 1 {
                RunKind::Single
            } else {
                RunKind::Colocated
            },
            players,
            vm: self.vm,
            start,
            elapsed,
        });
    }

    /// Accounts for a batch of games that ran concurrently on identical VMs: every game
    /// is charged in core-hours but the clock advances only by the longest one.
    pub fn commit_parallel(&mut self, outcomes: &[ColocationOutcome]) {
        let parts: Vec<(usize, SimTime, f64)> = outcomes
            .iter()
            .map(|o| (o.players(), o.start_time(), o.elapsed()))
            .collect();
        self.commit_parallel_parts(&parts);
    }

    /// [`commit_parallel`](Self::commit_parallel) from raw accounting triples.
    pub fn commit_parallel_parts(&mut self, parts: &[(usize, SimTime, f64)]) {
        if parts.is_empty() {
            return;
        }
        let elapsed: Vec<f64> = parts.iter().map(|(_, _, e)| *e).collect();
        self.cost.charge_parallel(self.vm, &elapsed);
        let max_elapsed = elapsed.iter().copied().fold(0.0_f64, f64::max);
        self.clock += max_elapsed;
        for (players, start, elapsed) in parts.iter().copied() {
            self.log.push(RunRecord {
                kind: if players == 1 {
                    RunKind::Single
                } else {
                    RunKind::Colocated
                },
                players,
                vm: self.vm,
                start,
                elapsed,
            });
        }
    }

    /// Convenience helper: runs a co-located game to completion, commits it, and returns
    /// the outcome.
    pub fn run_colocated_to_completion(&mut self, specs: &[ExecutionSpec]) -> ColocationOutcome {
        let mut run = self.start_colocated(specs);
        let cap = self.run_cap(specs);
        run.run_to_completion(cap);
        let outcome = run.into_outcome();
        self.commit(&outcome);
        outcome
    }

    /// Runs a single configuration alone on the node, committing its cost.
    pub fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        if fast_path_enabled() {
            return self.run_single_fast(spec);
        }
        let started_at = self.clock;
        let outcome = self.run_colocated_to_completion(std::slice::from_ref(&spec));
        ObservedRun {
            observed_time: outcome.observed_times()[0],
            started_at,
            elapsed: outcome.elapsed(),
        }
    }

    /// Plays one full co-located game through the fused fast path: the same physics as
    /// stepping a [`ColocatedRun`] under the execution layer's early-termination loop,
    /// rewritten as a single struct-of-arrays pass per step with the memoized
    /// [`InterferenceSampler`] and reusable scratch buffers.
    ///
    /// Bit-identical to the reference path in every output field and in the RNG stream
    /// it consumes (the per-player jitter and measurement-noise draws happen in the
    /// exact same order). The game is *uncommitted*: cost and clock are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn play_game_fast(
        &mut self,
        specs: &[ExecutionSpec],
        rules: &GameTermination,
    ) -> SimulatedPlay {
        assert!(!specs.is_empty(), "a game needs at least one player");
        let players = specs.len();
        let vcpus = self.vm.vcpus();
        let speed = self.vm.speed_factor();
        let interference_factor = self.vm.interference_factor();
        let start = self.clock;
        let start_seconds = start.as_seconds();

        // Per-player hot state as flat struct-of-arrays, refilled in place. The jitter
        // draws for all players come before the noise draws, mirroring
        // `ColocatedRun::new`; the scaled specs are split into base/sensitivity columns
        // so the per-step rate pass is a straight-line loop over flat `f64` arrays.
        let scratch = &mut self.scratch;
        let rng = &mut self.rng;
        scratch.base.clear();
        scratch.sens.clear();
        for spec in specs {
            let scaled = spec.scaled(speed);
            scratch.base.push(scaled.base_time());
            scratch.sens.push(scaled.sensitivity());
        }
        scratch.jitter.clear();
        scratch
            .jitter
            .extend((0..players).map(|_| rng.normal_with(1.0, PLAYER_JITTER_STD).clamp(0.6, 1.4)));
        scratch.noise.clear();
        scratch.noise.extend((0..players).map(|_| {
            rng.normal_with(1.0, MEASUREMENT_NOISE_STD)
                .clamp(0.99, 1.01)
        }));
        scratch.rate.clear();
        scratch.rate.resize(players, 0.0);
        scratch.progress.clear();
        scratch.progress.resize(players, 0.0);
        scratch.finish.clear();
        scratch.finish.resize(players, f64::NAN);

        let contention = CONTENTION_COEFF * (players.saturating_sub(1)) as f64 / vcpus as f64;
        let overload = if players > vcpus {
            players as f64 / vcpus as f64
        } else {
            1.0
        };
        let dt = scratch.base.iter().copied().fold(f64::INFINITY, f64::min) / 200.0;
        let dt = dt.max(0.25);
        let max_seconds = specs
            .iter()
            .map(ExecutionSpec::base_time)
            .fold(0.0_f64, f64::max)
            * MAX_RUN_MULTIPLIER;

        let check_early = rules.early_termination && players > 1;
        let mut elapsed = 0.0_f64;
        let mut finished = 0usize;
        let mut early_terminated = false;

        while finished == 0 && elapsed < max_seconds {
            let ambient =
                self.sampler.level_at_seconds(start_seconds + elapsed) * interference_factor;
            let shared = ambient + contention;
            // Rate pass: branch-free and bounds-check-free over the SoA columns, so the
            // compiler can vectorise the divisions (the per-step cost centre). Rates
            // for already-finished players are computed but never consumed — while the
            // game is still running at most one player can have finished this very
            // step, so the waste is nil and no consumed value changes.
            {
                let base = &scratch.base[..players];
                let sens = &scratch.sens[..players];
                let jitter = &scratch.jitter[..players];
                let noise = &scratch.noise[..players];
                let rate = &mut scratch.rate[..players];
                for i in 0..players {
                    let effective = shared * jitter[i];
                    // Identical expression shape to `ExecutionSpec::progress_rate`
                    // composed with the noise/overload factors of the reference loop.
                    rate[i] = 1.0 / (base[i] * (1.0 + sens[i] * effective.max(0.0))) * noise[i]
                        / overload;
                }
            }
            // Advance pass: integrate progress and interpolate finish instants.
            for i in 0..players {
                if scratch.finish[i].is_nan() {
                    let rate = scratch.rate[i];
                    let advanced = scratch.progress[i] + rate * dt;
                    if advanced >= 1.0 {
                        // Interpolate the exact finish instant inside this step.
                        let remaining = 1.0 - scratch.progress[i];
                        scratch.finish[i] = elapsed + remaining / rate;
                        scratch.progress[i] = 1.0;
                        finished += 1;
                    } else {
                        scratch.progress[i] = advanced;
                    }
                }
            }
            elapsed += dt;
            if check_early {
                // Top-2 work fractions for the early-termination check (leader = first
                // strictly-greatest index, exactly like `ColocatedRun::leader`).
                let mut best_work = f64::NEG_INFINITY;
                let mut second_work = f64::NEG_INFINITY;
                for &work in &scratch.progress[..players] {
                    if work > best_work {
                        second_work = best_work;
                        best_work = work;
                    } else if work > second_work {
                        second_work = work;
                    }
                }
                if best_work >= rules.min_leader_progress {
                    // The reference path folds the runner-up from 0.0; progress is
                    // never negative, so clamping the tracked second value reproduces
                    // it exactly.
                    let runner_up = second_work.max(0.0);
                    let gap = if best_work > 0.0 {
                        (best_work - runner_up) / best_work
                    } else {
                        0.0
                    };
                    if gap >= rules.work_done_deviation {
                        early_terminated = true;
                        break;
                    }
                }
            }
        }

        let mut observed_times = Vec::with_capacity(players);
        for i in 0..players {
            let finish = scratch.finish[i];
            observed_times.push(if finish.is_nan() {
                // Extrapolate from current progress; players that have done no work get
                // an effectively infinite estimate.
                let progress = scratch.progress[i];
                if progress > 0.0 {
                    elapsed / progress
                } else {
                    f64::INFINITY
                }
            } else {
                finish
            });
        }
        let best = observed_times.iter().copied().fold(f64::INFINITY, f64::min);
        let execution_scores = if !best.is_finite() || best <= 0.0 {
            vec![0.0; players]
        } else {
            observed_times
                .iter()
                .map(|t| {
                    if t.is_finite() {
                        (best / t).min(1.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        };

        SimulatedPlay {
            start,
            elapsed,
            observed_times,
            execution_scores,
            early_terminated,
        }
    }

    /// `run_single` through the fused scalar path; bit-identical to the reference
    /// implementation, including the two normals it draws from the game RNG stream.
    fn run_single_fast(&mut self, spec: ExecutionSpec) -> ObservedRun {
        let started_at = self.clock;
        let jitter = self.rng.normal_with(1.0, PLAYER_JITTER_STD).clamp(0.6, 1.4);
        let noise = self
            .rng
            .normal_with(1.0, MEASUREMENT_NOISE_STD)
            .clamp(0.99, 1.01);
        let (observed_time, elapsed) = self.solo_run_fast(spec, started_at, jitter, noise);
        self.commit_parts(1, started_at, elapsed);
        ObservedRun {
            observed_time,
            started_at,
            elapsed,
        }
    }

    /// Runs one player alone to completion (or the run cap) with pre-drawn jitter and
    /// noise; returns `(observed_time, elapsed)`. Shared by the committed
    /// `run_single_fast` and the cost-free observation fast path.
    fn solo_run_fast(
        &self,
        spec: ExecutionSpec,
        start: SimTime,
        jitter: f64,
        noise: f64,
    ) -> (f64, f64) {
        let scaled = spec.scaled(self.vm.speed_factor());
        let interference_factor = self.vm.interference_factor();
        let start_seconds = start.as_seconds();
        // Same formulas as the co-located engine specialised to one player: zero
        // contention, no overload.
        let contention = CONTENTION_COEFF * 0.0 / self.vm.vcpus() as f64;
        let overload = 1.0;
        let dt = (scaled.base_time() / 200.0).max(0.25);
        let cap = self.run_cap(std::slice::from_ref(&spec));

        let mut elapsed = 0.0_f64;
        let mut progress = 0.0_f64;
        let mut finish = f64::NAN;
        while finish.is_nan() && elapsed < cap {
            let ambient =
                self.sampler.level_at_seconds(start_seconds + elapsed) * interference_factor;
            let effective = (ambient + contention) * jitter;
            let rate = scaled.progress_rate(effective) * noise / overload;
            let advanced = progress + rate * dt;
            if advanced >= 1.0 {
                let remaining = 1.0 - progress;
                finish = elapsed + remaining / rate;
                progress = 1.0;
            } else {
                progress = advanced;
            }
            elapsed += dt;
        }
        let observed = if finish.is_nan() {
            if progress > 0.0 {
                elapsed / progress
            } else {
                f64::INFINITY
            }
        } else {
            finish
        };
        (observed, elapsed)
    }

    /// Observes a single run of `spec` starting at `start`, *without* committing cost or
    /// advancing the clock.
    ///
    /// This models measuring the performance of an already-tuned application at an
    /// arbitrary later time (the repeated-execution measurements behind Fig. 11 and the
    /// error bars of Fig. 10). The `salt` decorrelates the per-run measurement jitter of
    /// repeated observations at the same start time.
    pub fn observe_single_at(&self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64 {
        let mut rng = SimRng::new(self.node_seed)
            .derive_index(salt)
            .derive("observe");
        if fast_path_enabled() {
            let jitter = rng.normal_with(1.0, PLAYER_JITTER_STD).clamp(0.6, 1.4);
            let noise = rng
                .normal_with(1.0, MEASUREMENT_NOISE_STD)
                .clamp(0.99, 1.01);
            return self.solo_run_fast(spec, start, jitter, noise).0;
        }
        let scaled = spec.scaled(self.vm.speed_factor());
        let mut run = ColocatedRun::new(
            self.vm,
            start,
            vec![scaled],
            self.profile.build(self.node_seed),
            &mut rng,
        );
        run.run_to_completion(self.run_cap(std::slice::from_ref(&spec)));
        run.into_outcome().observed_times()[0]
    }

    /// Observes `count` runs of `spec`, spaced `spacing_seconds` apart starting from the
    /// current clock, without committing cost. Returns the observed execution times.
    pub fn observe_repeated(
        &self,
        spec: ExecutionSpec,
        count: usize,
        spacing_seconds: f64,
    ) -> Vec<f64> {
        (0..count)
            .map(|i| {
                let start = self.clock + spacing_seconds * i as f64;
                self.observe_single_at(spec, start, i as u64)
            })
            .collect()
    }

    fn run_cap(&self, specs: &[ExecutionSpec]) -> f64 {
        let slowest = specs
            .iter()
            .map(ExecutionSpec::base_time)
            .fold(0.0_f64, f64::max);
        slowest * MAX_RUN_MULTIPLIER
    }
}

/// A dedicated, interference-free environment.
///
/// This is the (practically unaffordable) setting in which the paper defines the
/// *optimal* configuration: no co-tenants, no contention, only negligible measurement
/// noise.
#[derive(Debug)]
pub struct DedicatedEnvironment {
    rng: SimRng,
    cost: CostTracker,
    vm: VmType,
}

impl DedicatedEnvironment {
    /// Creates a dedicated environment on the given VM type.
    pub fn new(vm: VmType, seed: u64) -> Self {
        Self {
            rng: SimRng::new(seed).derive("dedicated"),
            cost: CostTracker::new(),
            vm,
        }
    }

    /// The VM type.
    pub fn vm(&self) -> VmType {
        self.vm
    }

    /// The exact dedicated-environment execution time of a configuration (no noise).
    pub fn true_time(&self, spec: ExecutionSpec) -> f64 {
        spec.base_time() * self.vm.speed_factor()
    }

    /// Measures one run with a small (±0.2 %) measurement noise, charging its cost.
    pub fn measure(&mut self, spec: ExecutionSpec) -> f64 {
        let noise = self.rng.normal_with(1.0, 0.002).clamp(0.99, 1.01);
        let time = self.true_time(spec) * noise;
        self.cost.charge_serial(self.vm, time);
        time
    }

    /// Resources consumed by measurements so far.
    pub fn cost(&self) -> &CostTracker {
        &self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(seed: u64) -> CloudEnvironment {
        CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), seed)
    }

    #[test]
    fn committed_runs_advance_clock_and_cost() {
        let mut cloud = env(1);
        assert_eq!(cloud.clock(), SimTime::ZERO);
        let spec = ExecutionSpec::new(120.0, 0.5);
        let run = cloud.run_single(spec);
        assert!(run.observed_time >= 110.0, "observed {}", run.observed_time);
        assert!(cloud.clock().as_seconds() > 0.0);
        assert!(cloud.cost().core_hours() > 0.0);
        assert_eq!(cloud.run_log().len(), 1);
    }

    #[test]
    fn observation_does_not_consume_budget() {
        let cloud = env(2);
        let spec = ExecutionSpec::new(100.0, 0.8);
        let t = cloud.observe_single_at(spec, SimTime::from_seconds(1000.0), 0);
        assert!(t >= 95.0);
        assert_eq!(cloud.cost().core_hours(), 0.0);
        assert_eq!(cloud.run_log().len(), 0);
    }

    #[test]
    fn observations_are_deterministic() {
        let cloud = env(3);
        let spec = ExecutionSpec::new(150.0, 0.9);
        let a = cloud.observe_single_at(spec, SimTime::from_seconds(2500.0), 7);
        let b = cloud.observe_single_at(spec, SimTime::from_seconds(2500.0), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_observations_vary_with_time() {
        let cloud = env(4);
        let spec = ExecutionSpec::new(200.0, 1.0);
        let samples = cloud.observe_repeated(spec, 40, 1800.0);
        let cov = dg_stats::coefficient_of_variation(&samples);
        assert!(
            cov > 1.0,
            "a sensitive config must show variability, cov={cov}"
        );
        // And everything is at least the dedicated time.
        assert!(samples.iter().all(|t| *t >= 190.0));
    }

    #[test]
    fn insensitive_config_is_stable() {
        let cloud = env(5);
        let sensitive = ExecutionSpec::new(200.0, 1.2);
        let robust = ExecutionSpec::new(200.0, 0.05);
        let cov_sensitive =
            dg_stats::coefficient_of_variation(&cloud.observe_repeated(sensitive, 40, 1800.0));
        let cov_robust =
            dg_stats::coefficient_of_variation(&cloud.observe_repeated(robust, 40, 1800.0));
        assert!(
            cov_robust < cov_sensitive,
            "robust={cov_robust} sensitive={cov_sensitive}"
        );
    }

    #[test]
    fn parallel_commit_advances_clock_by_longest() {
        let mut cloud = env(6);
        let specs_a = vec![ExecutionSpec::new(50.0, 0.3); 4];
        let specs_b = vec![ExecutionSpec::new(100.0, 0.3); 4];
        let mut run_a = cloud.start_colocated(&specs_a);
        let mut run_b = cloud.start_colocated(&specs_b);
        run_a.run_to_completion(10_000.0);
        run_b.run_to_completion(10_000.0);
        let (a, b) = (run_a.into_outcome(), run_b.into_outcome());
        let longest = a.elapsed().max(b.elapsed());
        cloud.commit_parallel(&[a, b]);
        assert!((cloud.clock().as_seconds() - longest).abs() < 1e-9);
        assert_eq!(cloud.run_log().len(), 2);
    }

    #[test]
    fn colocated_players_share_noise() {
        // Two identical specs in one game should finish at nearly the same time (only
        // per-player jitter separates them), whereas two sequential single runs at very
        // different clock times can differ a lot more. We only check the first property,
        // which is the one DarwinGame relies on.
        let mut cloud = env(7);
        let spec = ExecutionSpec::new(300.0, 1.0);
        let outcome = cloud.run_colocated_to_completion(&[spec, spec]);
        let times = outcome.observed_times();
        let relative_gap = (times[0] - times[1]).abs() / times[0].max(times[1]);
        assert!(relative_gap < 0.25, "gap {relative_gap}");
    }

    #[test]
    fn vm_speed_factor_applies() {
        let mut fast = CloudEnvironment::new(VmType::C5_9xlarge, InterferenceProfile::Dedicated, 1);
        let mut slow = CloudEnvironment::new(VmType::M5Large, InterferenceProfile::Dedicated, 1);
        let spec = ExecutionSpec::new(100.0, 0.0);
        let tf = fast.run_single(spec).observed_time;
        let ts = slow.run_single(spec).observed_time;
        assert!(tf < ts, "c5 ({tf}) should beat m5.large ({ts})");
    }

    #[test]
    fn dedicated_environment_is_nearly_noise_free() {
        let mut dedicated = DedicatedEnvironment::new(VmType::M5_8xlarge, 9);
        let spec = ExecutionSpec::new(400.0, 1.0);
        assert_eq!(dedicated.true_time(spec), 400.0);
        let samples: Vec<f64> = (0..20).map(|_| dedicated.measure(spec)).collect();
        let cov = dg_stats::coefficient_of_variation(&samples);
        assert!(cov < 0.5, "dedicated CoV should be tiny, got {cov}");
        assert!(dedicated.cost().core_hours() > 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn clock_cannot_go_backwards() {
        let mut cloud = env(8);
        cloud.set_clock(SimTime::from_seconds(100.0));
        cloud.set_clock(SimTime::from_seconds(50.0));
    }

    /// The reference game loop: a [`ColocatedRun`] stepped under the execution layer's
    /// early-termination rules, exactly as `dg-exec::play_on` drives it. The fused fast
    /// path must reproduce this bit for bit.
    fn reference_game(
        env: &mut CloudEnvironment,
        specs: &[ExecutionSpec],
        rules: &GameTermination,
    ) -> SimulatedPlay {
        let mut run = env.start_colocated(specs);
        let step = run.default_step();
        let max_seconds = specs
            .iter()
            .map(ExecutionSpec::base_time)
            .fold(0.0_f64, f64::max)
            * MAX_RUN_MULTIPLIER;
        let mut early_terminated = false;
        while !run.any_finished() && run.elapsed() < max_seconds {
            run.step(step);
            if rules.early_termination && specs.len() > 1 {
                let fractions = run.work_fractions();
                let leader = run.leader();
                let leader_work = fractions[leader];
                if leader_work >= rules.min_leader_progress {
                    let runner_up = fractions
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != leader)
                        .map(|(_, w)| *w)
                        .fold(0.0_f64, f64::max);
                    let gap = if leader_work > 0.0 {
                        (leader_work - runner_up) / leader_work
                    } else {
                        0.0
                    };
                    if gap >= rules.work_done_deviation {
                        early_terminated = true;
                        break;
                    }
                }
            }
        }
        let outcome = run.into_outcome();
        SimulatedPlay {
            start: outcome.start_time(),
            elapsed: outcome.elapsed(),
            observed_times: outcome.observed_times().to_vec(),
            execution_scores: outcome.execution_scores(),
            early_terminated,
        }
    }

    fn assert_plays_bit_identical(fast: &SimulatedPlay, reference: &SimulatedPlay, label: &str) {
        assert_eq!(fast.start, reference.start, "{label}: start");
        assert_eq!(
            fast.elapsed.to_bits(),
            reference.elapsed.to_bits(),
            "{label}: elapsed"
        );
        assert_eq!(
            fast.early_terminated, reference.early_terminated,
            "{label}: early_terminated"
        );
        assert_eq!(
            fast.observed_times.len(),
            reference.observed_times.len(),
            "{label}: player count"
        );
        for i in 0..fast.observed_times.len() {
            assert_eq!(
                fast.observed_times[i].to_bits(),
                reference.observed_times[i].to_bits(),
                "{label}: observed_times[{i}]"
            );
            assert_eq!(
                fast.execution_scores[i].to_bits(),
                reference.execution_scores[i].to_bits(),
                "{label}: execution_scores[{i}]"
            );
        }
    }

    #[test]
    fn fast_game_is_bit_identical_to_reference() {
        let rules_default = GameTermination {
            early_termination: true,
            work_done_deviation: 0.10,
            min_leader_progress: 0.25,
        };
        let rules_playoff = GameTermination {
            early_termination: false,
            ..rules_default
        };
        for vm in VmType::ALL {
            for profile in [
                InterferenceProfile::typical(),
                InterferenceProfile::heavy(),
                InterferenceProfile::Dedicated,
            ] {
                for seed in [1_u64, 77] {
                    let mut fast_env = CloudEnvironment::new(vm, profile.clone(), seed);
                    let mut ref_env = CloudEnvironment::new(vm, profile.clone(), seed);
                    // Several games back to back so the RNG streams must stay aligned,
                    // with varying player counts including a batch-of-one.
                    for (game, players) in [2_usize, 1, 8, 16, 3].into_iter().enumerate() {
                        let specs: Vec<ExecutionSpec> = (0..players)
                            .map(|i| {
                                ExecutionSpec::new(
                                    60.0 + 40.0 * i as f64,
                                    0.1 + 0.15 * (i % 7) as f64,
                                )
                            })
                            .collect();
                        let rules = if game % 2 == 0 {
                            rules_default
                        } else {
                            rules_playoff
                        };
                        let fast = fast_env.play_game_fast(&specs, &rules);
                        let reference = reference_game(&mut ref_env, &specs, &rules);
                        assert_plays_bit_identical(
                            &fast,
                            &reference,
                            &format!("{vm:?}/{profile:?}/seed={seed}/game={game}"),
                        );
                        // Advance both clocks identically so later games differ in start.
                        fast_env.commit_parts(specs.len(), fast.start, fast.elapsed);
                        ref_env.commit_parts(specs.len(), reference.start, reference.elapsed);
                        assert_eq!(fast_env.clock(), ref_env.clock());
                    }
                }
            }
        }
    }

    #[test]
    fn fast_solo_run_is_bit_identical_to_reference() {
        for seed in [2_u64, 13, 101] {
            let mut fast_env = env(seed);
            let mut ref_env = env(seed);
            for i in 0..6 {
                let spec = ExecutionSpec::new(50.0 + 30.0 * i as f64, 0.2 + 0.1 * i as f64);
                let fast = fast_env.run_single_fast(spec);
                // The reference body of `run_single`.
                let started_at = ref_env.clock();
                let outcome = ref_env.run_colocated_to_completion(std::slice::from_ref(&spec));
                let reference = ObservedRun {
                    observed_time: outcome.observed_times()[0],
                    started_at,
                    elapsed: outcome.elapsed(),
                };
                assert_eq!(
                    fast.observed_time.to_bits(),
                    reference.observed_time.to_bits()
                );
                assert_eq!(fast.elapsed.to_bits(), reference.elapsed.to_bits());
                assert_eq!(fast.started_at, reference.started_at);
                assert_eq!(fast_env.clock(), ref_env.clock());
                assert_eq!(
                    fast_env.cost().core_hours().to_bits(),
                    ref_env.cost().core_hours().to_bits()
                );
            }
        }
    }

    #[test]
    fn fast_observation_is_bit_identical_to_reference() {
        for seed in [3_u64, 29] {
            let cloud = env(seed);
            for salt in 0..5_u64 {
                for i in 0..4 {
                    let spec = ExecutionSpec::new(80.0 + 25.0 * i as f64, 0.3 + 0.2 * i as f64);
                    let start = SimTime::from_seconds(500.0 * (salt + 1) as f64);
                    // Fast path via solo_run_fast with the observe RNG stream.
                    let mut rng = SimRng::new(cloud.node_seed)
                        .derive_index(salt)
                        .derive("observe");
                    let jitter = rng.normal_with(1.0, PLAYER_JITTER_STD).clamp(0.6, 1.4);
                    let noise = rng
                        .normal_with(1.0, MEASUREMENT_NOISE_STD)
                        .clamp(0.99, 1.01);
                    let fast = cloud.solo_run_fast(spec, start, jitter, noise).0;
                    // Reference body of `observe_single_at`.
                    let mut ref_rng = SimRng::new(cloud.node_seed)
                        .derive_index(salt)
                        .derive("observe");
                    let scaled = spec.scaled(cloud.vm.speed_factor());
                    let mut run = ColocatedRun::new(
                        cloud.vm,
                        start,
                        vec![scaled],
                        cloud.profile.build(cloud.node_seed),
                        &mut ref_rng,
                    );
                    run.run_to_completion(cloud.run_cap(std::slice::from_ref(&spec)));
                    let reference = run.into_outcome().observed_times()[0];
                    assert_eq!(fast.to_bits(), reference.to_bits());
                }
            }
        }
    }
}
