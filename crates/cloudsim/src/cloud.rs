//! The top-level cloud and dedicated execution environments.

use crate::colocation::{ColocatedRun, ColocationOutcome};
use crate::cost::CostTracker;
use crate::interference::{InterferenceModel, InterferenceProfile};
use crate::record::{RunKind, RunLog, RunRecord};
use crate::rng::SimRng;
use crate::spec::ExecutionSpec;
use crate::time::SimTime;
use crate::vm::VmType;
use serde::{Deserialize, Serialize};

/// Safety cap on simulated game length, expressed as a multiple of the slowest player's
/// dedicated execution time. Prevents run-away integration if a pathological spec is fed
/// to the simulator. Public because execution backends that drive games themselves
/// (`dg-exec`) must apply the exact same cap to stay bit-compatible with committed runs.
pub const MAX_RUN_MULTIPLIER: f64 = 64.0;

/// The observation returned by a committed single-configuration run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedRun {
    /// Observed execution time in seconds (including interference effects).
    pub observed_time: f64,
    /// Simulated time at which the run started.
    pub started_at: SimTime,
    /// Wall-clock seconds the run occupied (and was charged for) on its node. Slightly
    /// larger than `observed_time` because the simulator integrates in discrete steps
    /// and charges whole steps; this is the exact value the cost tracker saw, which
    /// record/replay execution backends need to reproduce accounting bit for bit.
    pub elapsed: f64,
}

/// A shared, interference-prone cloud node on which tuning is performed.
///
/// The environment owns a simulated wall clock, an interference model for its node, a
/// cost tracker, and a run log. All tuners (baselines and DarwinGame) evaluate
/// configurations exclusively through this type, so they are all exposed to the same
/// noise statistics.
pub struct CloudEnvironment {
    vm: VmType,
    profile: InterferenceProfile,
    seed: u64,
    node_seed: u64,
    model: Box<dyn InterferenceModel>,
    clock: SimTime,
    cost: CostTracker,
    rng: SimRng,
    log: RunLog,
}

impl std::fmt::Debug for CloudEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudEnvironment")
            .field("vm", &self.vm)
            .field("clock", &self.clock)
            .field("core_hours", &self.cost.core_hours())
            .field("runs", &self.log.len())
            .finish()
    }
}

impl CloudEnvironment {
    /// Creates a cloud environment on the given VM type with the given interference
    /// profile. The `seed` controls both the node's noise realisation and all
    /// per-game jitter, so two environments with the same arguments behave identically.
    pub fn new(vm: VmType, profile: InterferenceProfile, seed: u64) -> Self {
        let rng = SimRng::new(seed);
        let node_seed = rng.derive("node").seed();
        let model = profile.build(node_seed);
        Self {
            vm,
            profile,
            seed,
            node_seed,
            model,
            clock: SimTime::ZERO,
            cost: CostTracker::new(),
            rng: rng.derive("games"),
            log: RunLog::new(),
        }
    }

    /// The VM type this environment simulates.
    pub fn vm(&self) -> VmType {
        self.vm
    }

    /// The interference profile of the node.
    pub fn profile(&self) -> &InterferenceProfile {
        &self.profile
    }

    /// The root seed the environment was constructed with. Two environments on the same
    /// VM type and profile with the same seed behave identically, so the seed is the
    /// identity of the environment's entire noise realisation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The current simulated wall-clock time.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Moves the wall clock to `t` (used to start tuning sessions at different times of
    /// day, as in Fig. 3).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current clock.
    pub fn set_clock(&mut self, t: SimTime) {
        assert!(
            t.as_seconds() >= self.clock.as_seconds(),
            "the simulated clock cannot move backwards"
        );
        self.clock = t;
    }

    /// Resources consumed so far.
    pub fn cost(&self) -> &CostTracker {
        &self.cost
    }

    /// Audit log of committed runs.
    pub fn run_log(&self) -> &RunLog {
        &self.log
    }

    /// Default number of players per game on this VM (its vCPU count), the paper's `P`.
    pub fn players_per_game(&self) -> usize {
        self.vm.vcpus()
    }

    /// The ambient interference level at time `t` (before VM scaling); exposed for
    /// calibration tests and plotting.
    pub fn interference_level(&self, t: SimTime) -> f64 {
        self.model.level(t)
    }

    /// Starts a co-located game of the given configurations at the current clock.
    ///
    /// The returned [`ColocatedRun`] is independent of the environment; once stepping is
    /// done, pass its outcome to [`commit`](Self::commit) (or
    /// [`commit_parallel`](Self::commit_parallel)) to account for its cost and advance
    /// the clock.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn start_colocated(&mut self, specs: &[ExecutionSpec]) -> ColocatedRun {
        assert!(!specs.is_empty(), "a game needs at least one player");
        let scaled: Vec<ExecutionSpec> = specs
            .iter()
            .map(|s| s.scaled(self.vm.speed_factor()))
            .collect();
        ColocatedRun::new(
            self.vm,
            self.clock,
            scaled,
            self.profile.build(self.node_seed),
            &mut self.rng,
        )
    }

    /// Accounts for a finished game and advances the wall clock by its elapsed time.
    pub fn commit(&mut self, outcome: &ColocationOutcome) {
        self.commit_parts(outcome.players(), outcome.start_time(), outcome.elapsed());
    }

    /// [`commit`](Self::commit) from the raw accounting triple `(players, start,
    /// elapsed)` instead of a full [`ColocationOutcome`].
    ///
    /// Execution backends that did not resimulate the game (trace replay, memoised
    /// hits) only carry these three numbers; charging through the same code path keeps
    /// their cost accounting bit-identical to a live simulation.
    pub fn commit_parts(&mut self, players: usize, start: SimTime, elapsed: f64) {
        self.cost.charge_serial(self.vm, elapsed);
        self.clock += elapsed;
        self.log.push(RunRecord {
            kind: if players == 1 {
                RunKind::Single
            } else {
                RunKind::Colocated
            },
            players,
            vm: self.vm,
            start,
            elapsed,
        });
    }

    /// Accounts for a batch of games that ran concurrently on identical VMs: every game
    /// is charged in core-hours but the clock advances only by the longest one.
    pub fn commit_parallel(&mut self, outcomes: &[ColocationOutcome]) {
        let parts: Vec<(usize, SimTime, f64)> = outcomes
            .iter()
            .map(|o| (o.players(), o.start_time(), o.elapsed()))
            .collect();
        self.commit_parallel_parts(&parts);
    }

    /// [`commit_parallel`](Self::commit_parallel) from raw accounting triples.
    pub fn commit_parallel_parts(&mut self, parts: &[(usize, SimTime, f64)]) {
        if parts.is_empty() {
            return;
        }
        let elapsed: Vec<f64> = parts.iter().map(|(_, _, e)| *e).collect();
        self.cost.charge_parallel(self.vm, &elapsed);
        let max_elapsed = elapsed.iter().copied().fold(0.0_f64, f64::max);
        self.clock += max_elapsed;
        for (players, start, elapsed) in parts.iter().copied() {
            self.log.push(RunRecord {
                kind: if players == 1 {
                    RunKind::Single
                } else {
                    RunKind::Colocated
                },
                players,
                vm: self.vm,
                start,
                elapsed,
            });
        }
    }

    /// Convenience helper: runs a co-located game to completion, commits it, and returns
    /// the outcome.
    pub fn run_colocated_to_completion(&mut self, specs: &[ExecutionSpec]) -> ColocationOutcome {
        let mut run = self.start_colocated(specs);
        let cap = self.run_cap(specs);
        run.run_to_completion(cap);
        let outcome = run.into_outcome();
        self.commit(&outcome);
        outcome
    }

    /// Runs a single configuration alone on the node, committing its cost.
    pub fn run_single(&mut self, spec: ExecutionSpec) -> ObservedRun {
        let started_at = self.clock;
        let outcome = self.run_colocated_to_completion(std::slice::from_ref(&spec));
        ObservedRun {
            observed_time: outcome.observed_times()[0],
            started_at,
            elapsed: outcome.elapsed(),
        }
    }

    /// Observes a single run of `spec` starting at `start`, *without* committing cost or
    /// advancing the clock.
    ///
    /// This models measuring the performance of an already-tuned application at an
    /// arbitrary later time (the repeated-execution measurements behind Fig. 11 and the
    /// error bars of Fig. 10). The `salt` decorrelates the per-run measurement jitter of
    /// repeated observations at the same start time.
    pub fn observe_single_at(&self, spec: ExecutionSpec, start: SimTime, salt: u64) -> f64 {
        let mut rng = SimRng::new(self.node_seed)
            .derive_index(salt)
            .derive("observe");
        let scaled = spec.scaled(self.vm.speed_factor());
        let mut run = ColocatedRun::new(
            self.vm,
            start,
            vec![scaled],
            self.profile.build(self.node_seed),
            &mut rng,
        );
        run.run_to_completion(self.run_cap(std::slice::from_ref(&spec)));
        run.into_outcome().observed_times()[0]
    }

    /// Observes `count` runs of `spec`, spaced `spacing_seconds` apart starting from the
    /// current clock, without committing cost. Returns the observed execution times.
    pub fn observe_repeated(
        &self,
        spec: ExecutionSpec,
        count: usize,
        spacing_seconds: f64,
    ) -> Vec<f64> {
        (0..count)
            .map(|i| {
                let start = self.clock + spacing_seconds * i as f64;
                self.observe_single_at(spec, start, i as u64)
            })
            .collect()
    }

    fn run_cap(&self, specs: &[ExecutionSpec]) -> f64 {
        let slowest = specs
            .iter()
            .map(ExecutionSpec::base_time)
            .fold(0.0_f64, f64::max);
        slowest * MAX_RUN_MULTIPLIER
    }
}

/// A dedicated, interference-free environment.
///
/// This is the (practically unaffordable) setting in which the paper defines the
/// *optimal* configuration: no co-tenants, no contention, only negligible measurement
/// noise.
#[derive(Debug)]
pub struct DedicatedEnvironment {
    rng: SimRng,
    cost: CostTracker,
    vm: VmType,
}

impl DedicatedEnvironment {
    /// Creates a dedicated environment on the given VM type.
    pub fn new(vm: VmType, seed: u64) -> Self {
        Self {
            rng: SimRng::new(seed).derive("dedicated"),
            cost: CostTracker::new(),
            vm,
        }
    }

    /// The VM type.
    pub fn vm(&self) -> VmType {
        self.vm
    }

    /// The exact dedicated-environment execution time of a configuration (no noise).
    pub fn true_time(&self, spec: ExecutionSpec) -> f64 {
        spec.base_time() * self.vm.speed_factor()
    }

    /// Measures one run with a small (±0.2 %) measurement noise, charging its cost.
    pub fn measure(&mut self, spec: ExecutionSpec) -> f64 {
        let noise = self.rng.normal_with(1.0, 0.002).clamp(0.99, 1.01);
        let time = self.true_time(spec) * noise;
        self.cost.charge_serial(self.vm, time);
        time
    }

    /// Resources consumed by measurements so far.
    pub fn cost(&self) -> &CostTracker {
        &self.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(seed: u64) -> CloudEnvironment {
        CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), seed)
    }

    #[test]
    fn committed_runs_advance_clock_and_cost() {
        let mut cloud = env(1);
        assert_eq!(cloud.clock(), SimTime::ZERO);
        let spec = ExecutionSpec::new(120.0, 0.5);
        let run = cloud.run_single(spec);
        assert!(run.observed_time >= 110.0, "observed {}", run.observed_time);
        assert!(cloud.clock().as_seconds() > 0.0);
        assert!(cloud.cost().core_hours() > 0.0);
        assert_eq!(cloud.run_log().len(), 1);
    }

    #[test]
    fn observation_does_not_consume_budget() {
        let cloud = env(2);
        let spec = ExecutionSpec::new(100.0, 0.8);
        let t = cloud.observe_single_at(spec, SimTime::from_seconds(1000.0), 0);
        assert!(t >= 95.0);
        assert_eq!(cloud.cost().core_hours(), 0.0);
        assert_eq!(cloud.run_log().len(), 0);
    }

    #[test]
    fn observations_are_deterministic() {
        let cloud = env(3);
        let spec = ExecutionSpec::new(150.0, 0.9);
        let a = cloud.observe_single_at(spec, SimTime::from_seconds(2500.0), 7);
        let b = cloud.observe_single_at(spec, SimTime::from_seconds(2500.0), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_observations_vary_with_time() {
        let cloud = env(4);
        let spec = ExecutionSpec::new(200.0, 1.0);
        let samples = cloud.observe_repeated(spec, 40, 1800.0);
        let cov = dg_stats::coefficient_of_variation(&samples);
        assert!(
            cov > 1.0,
            "a sensitive config must show variability, cov={cov}"
        );
        // And everything is at least the dedicated time.
        assert!(samples.iter().all(|t| *t >= 190.0));
    }

    #[test]
    fn insensitive_config_is_stable() {
        let cloud = env(5);
        let sensitive = ExecutionSpec::new(200.0, 1.2);
        let robust = ExecutionSpec::new(200.0, 0.05);
        let cov_sensitive =
            dg_stats::coefficient_of_variation(&cloud.observe_repeated(sensitive, 40, 1800.0));
        let cov_robust =
            dg_stats::coefficient_of_variation(&cloud.observe_repeated(robust, 40, 1800.0));
        assert!(
            cov_robust < cov_sensitive,
            "robust={cov_robust} sensitive={cov_sensitive}"
        );
    }

    #[test]
    fn parallel_commit_advances_clock_by_longest() {
        let mut cloud = env(6);
        let specs_a = vec![ExecutionSpec::new(50.0, 0.3); 4];
        let specs_b = vec![ExecutionSpec::new(100.0, 0.3); 4];
        let mut run_a = cloud.start_colocated(&specs_a);
        let mut run_b = cloud.start_colocated(&specs_b);
        run_a.run_to_completion(10_000.0);
        run_b.run_to_completion(10_000.0);
        let (a, b) = (run_a.into_outcome(), run_b.into_outcome());
        let longest = a.elapsed().max(b.elapsed());
        cloud.commit_parallel(&[a, b]);
        assert!((cloud.clock().as_seconds() - longest).abs() < 1e-9);
        assert_eq!(cloud.run_log().len(), 2);
    }

    #[test]
    fn colocated_players_share_noise() {
        // Two identical specs in one game should finish at nearly the same time (only
        // per-player jitter separates them), whereas two sequential single runs at very
        // different clock times can differ a lot more. We only check the first property,
        // which is the one DarwinGame relies on.
        let mut cloud = env(7);
        let spec = ExecutionSpec::new(300.0, 1.0);
        let outcome = cloud.run_colocated_to_completion(&[spec, spec]);
        let times = outcome.observed_times();
        let relative_gap = (times[0] - times[1]).abs() / times[0].max(times[1]);
        assert!(relative_gap < 0.25, "gap {relative_gap}");
    }

    #[test]
    fn vm_speed_factor_applies() {
        let mut fast = CloudEnvironment::new(VmType::C5_9xlarge, InterferenceProfile::Dedicated, 1);
        let mut slow = CloudEnvironment::new(VmType::M5Large, InterferenceProfile::Dedicated, 1);
        let spec = ExecutionSpec::new(100.0, 0.0);
        let tf = fast.run_single(spec).observed_time;
        let ts = slow.run_single(spec).observed_time;
        assert!(tf < ts, "c5 ({tf}) should beat m5.large ({ts})");
    }

    #[test]
    fn dedicated_environment_is_nearly_noise_free() {
        let mut dedicated = DedicatedEnvironment::new(VmType::M5_8xlarge, 9);
        let spec = ExecutionSpec::new(400.0, 1.0);
        assert_eq!(dedicated.true_time(spec), 400.0);
        let samples: Vec<f64> = (0..20).map(|_| dedicated.measure(spec)).collect();
        let cov = dg_stats::coefficient_of_variation(&samples);
        assert!(cov < 0.5, "dedicated CoV should be tiny, got {cov}");
        assert!(dedicated.cost().core_hours() > 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn clock_cannot_go_backwards() {
        let mut cloud = env(8);
        cloud.set_clock(SimTime::from_seconds(100.0));
        cloud.set_clock(SimTime::from_seconds(50.0));
    }
}
