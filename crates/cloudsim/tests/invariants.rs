//! Interference-model invariants the tuning layers rely on.
//!
//! * the multiplicative slowdown of an execution is never below 1.0 — interference can
//!   only hurt, never speed a run up;
//! * the default shared-cloud profile produces execution-time variability inside the
//!   band the paper's motivation study observed (Fig. 1/2);
//! * co-location with zero neighbours is a no-op: a single-player "game" behaves like a
//!   plain dedicated run of that configuration.

use dg_cloudsim::{CloudEnvironment, ExecutionSpec, InterferenceProfile, SimTime, VmType};

#[test]
fn sampled_slowdown_factor_is_never_below_one() {
    for profile in [
        InterferenceProfile::Dedicated,
        InterferenceProfile::typical(),
        InterferenceProfile::heavy(),
        InterferenceProfile::Constant(0.4),
    ] {
        let cloud = CloudEnvironment::new(VmType::M5_8xlarge, profile.clone(), 42);
        for sensitivity in [0.0, 0.3, 0.9, 1.5] {
            let spec = ExecutionSpec::new(120.0, sensitivity);
            for step in 0..2_000u64 {
                let t = SimTime::from_seconds(step as f64 * 37.0);
                let level = cloud.interference_level(t);
                assert!(level >= 0.0, "interference level must be non-negative");
                let slowdown = spec.slowdown(level * VmType::M5_8xlarge.interference_factor());
                assert!(
                    slowdown >= 1.0,
                    "slowdown {slowdown} < 1 for {profile:?}, sensitivity {sensitivity}"
                );
            }
        }
    }
}

#[test]
fn typical_profile_cov_falls_in_the_observed_band() {
    // Fig. 2 of the paper: in the shared cloud, sensitive configurations show CoVs of
    // several percent up to ~20 %, while insensitive ones stay below ~2 %. Median over
    // several node seeds so one calm or stormy noise realisation cannot flip the test.
    let mut sensitive_covs = Vec::new();
    let mut robust_covs = Vec::new();
    for seed in 0..5u64 {
        let cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), seed);
        let sensitive = cloud.observe_repeated(ExecutionSpec::new(200.0, 1.0), 60, 1_800.0);
        let robust = cloud.observe_repeated(ExecutionSpec::new(200.0, 0.05), 60, 1_800.0);
        sensitive_covs.push(dg_stats::coefficient_of_variation(&sensitive));
        robust_covs.push(dg_stats::coefficient_of_variation(&robust));
    }
    let sensitive_median = dg_stats::median(&sensitive_covs);
    let robust_median = dg_stats::median(&robust_covs);
    assert!(
        (2.0..40.0).contains(&sensitive_median),
        "sensitive CoV {sensitive_median}% outside the paper's observed band"
    );
    assert!(
        robust_median < 2.0,
        "insensitive configurations must be stable, CoV {robust_median}%"
    );
    assert!(robust_median < sensitive_median);
}

#[test]
fn colocation_with_zero_neighbours_is_a_noop() {
    // A one-player game has no co-runner contention; on a dedicated (quiet) node the
    // observed time must match the dedicated execution time up to the ±1 % measurement
    // noise clamp (plus integration granularity).
    let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::Dedicated, 9);
    let spec = ExecutionSpec::new(300.0, 1.2);
    let outcome = cloud.run_colocated_to_completion(std::slice::from_ref(&spec));
    assert_eq!(outcome.players(), 1);
    let observed = outcome.observed_times()[0];
    assert!(
        (observed - 300.0).abs() <= 300.0 * 0.02,
        "single-player quiet game should match base time, got {observed}"
    );
}

#[test]
fn zero_neighbour_contention_does_not_depend_on_interference_sensitivity() {
    // Same no-op property under real noise: with zero sensitivity the configuration
    // ignores ambient interference, and with no neighbours there is no contention term,
    // so the observed time again matches the base time within the measurement clamp.
    let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 21);
    let spec = ExecutionSpec::new(250.0, 0.0);
    let outcome = cloud.run_colocated_to_completion(std::slice::from_ref(&spec));
    let observed = outcome.observed_times()[0];
    assert!(
        (observed - 250.0).abs() <= 250.0 * 0.02,
        "insensitive single-player game saw phantom contention: {observed}"
    );
}
