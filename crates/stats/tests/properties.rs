//! Property tests of the statistics primitives: the streaming and batch
//! implementations must agree, quantiles must be monotone, and the coefficient of
//! variation must not depend on the unit of measurement.

use dg_stats::{
    coefficient_of_variation, mean, sample_variance, DriftConfig, DriftDetector, EmpiricalCdf,
    Histogram, OnlineStats,
};
use proptest::prelude::*;

/// Splits `samples` into `parts` contiguous chunks (some possibly empty), the way a
/// sharded campaign splits one logical sample stream across processes.
fn chunked(samples: &[f64], parts: usize) -> Vec<&[f64]> {
    let per = samples.len().div_ceil(parts).max(1);
    let mut chunks: Vec<&[f64]> = samples.chunks(per).collect();
    while chunks.len() < parts {
        chunks.push(&[]);
    }
    chunks
}

/// Absolute-plus-relative tolerance: `1e-9` scaled by the magnitude of the reference.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + b.abs())
}

proptest! {
    /// Welford's online mean/variance agree with the two-pass batch versions.
    #[test]
    fn online_mean_and_variance_match_batch(
        samples in prop::collection::vec(-1_000.0f64..1_000.0, 2..128),
    ) {
        let mut online = OnlineStats::new();
        for sample in &samples {
            online.push(*sample);
        }
        prop_assert!(
            close(online.mean(), mean(&samples)),
            "mean: online {} vs batch {}",
            online.mean(),
            mean(&samples)
        );
        prop_assert!(
            close(online.variance(), sample_variance(&samples)),
            "variance: online {} vs batch {}",
            online.variance(),
            sample_variance(&samples)
        );
        prop_assert!(close(online.std_dev(), sample_variance(&samples).sqrt()));
    }

    /// Merging two online accumulators equals accumulating the concatenation.
    #[test]
    fn online_merge_matches_concatenation(
        left in prop::collection::vec(-500.0f64..500.0, 1..64),
        right in prop::collection::vec(-500.0f64..500.0, 1..64),
    ) {
        let mut merged = OnlineStats::new();
        for sample in &left {
            merged.push(*sample);
        }
        let mut other = OnlineStats::new();
        for sample in &right {
            other.push(*sample);
        }
        merged.merge(&other);

        let all: Vec<f64> = left.iter().chain(right.iter()).copied().collect();
        prop_assert!(close(merged.mean(), mean(&all)));
        prop_assert!(close(merged.variance(), sample_variance(&all)));
        prop_assert_eq!(merged.count(), all.len() as u64);
    }

    /// Merging K online partials (the sharded-campaign reduction shape) equals
    /// single-pass accumulation over the concatenated stream, within float tolerance.
    #[test]
    fn online_k_way_merge_matches_single_pass(
        samples in prop::collection::vec(-500.0f64..500.0, 1..128),
        parts in 2usize..7,
    ) {
        let mut merged = OnlineStats::new();
        for chunk in chunked(&samples, parts) {
            let mut partial = OnlineStats::new();
            for sample in chunk {
                partial.push(*sample);
            }
            merged.merge(&partial);
        }
        let mut single = OnlineStats::new();
        for sample in &samples {
            single.push(*sample);
        }
        prop_assert_eq!(merged.count(), single.count());
        prop_assert!(close(merged.mean(), single.mean()));
        prop_assert!(close(merged.variance(), single.variance()));
        prop_assert_eq!(merged.min().to_bits(), single.min().to_bits());
        prop_assert_eq!(merged.max().to_bits(), single.max().to_bits());
    }

    /// Merging K histogram partials is *exact*: integer bin counts are order-free.
    #[test]
    fn histogram_k_way_merge_is_exact(
        samples in prop::collection::vec(-50.0f64..150.0, 1..128),
        parts in 2usize..7,
        bins in 1usize..12,
    ) {
        let mut merged = Histogram::new(0.0, 100.0, bins);
        for chunk in chunked(&samples, parts) {
            let mut partial = Histogram::new(0.0, 100.0, bins);
            partial.extend_from_slice(chunk);
            merged.merge(&partial);
        }
        let mut single = Histogram::new(0.0, 100.0, bins);
        single.extend_from_slice(&samples);
        prop_assert_eq!(merged, single);
    }

    /// Merging K sorted CDF partials is *exact*: the merged sample list equals the
    /// sorted concatenation, so every quantile matches bit for bit.
    #[test]
    fn cdf_k_way_merge_is_exact(
        samples in prop::collection::vec(0.0f64..1_000.0, 1..128),
        parts in 2usize..7,
    ) {
        let mut merged = EmpiricalCdf::from_samples(&[]);
        for chunk in chunked(&samples, parts) {
            merged.merge(&EmpiricalCdf::from_samples(chunk));
        }
        let single = EmpiricalCdf::from_samples(&samples);
        prop_assert_eq!(&merged, &single);
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            prop_assert_eq!(merged.quantile(q).to_bits(), single.quantile(q).to_bits());
        }
    }

    /// Quantiles are monotone non-decreasing in `q` and hit min/max at the extremes.
    #[test]
    fn empirical_cdf_quantiles_are_monotone(
        samples in prop::collection::vec(0.0f64..5_000.0, 1..200),
    ) {
        let cdf = EmpiricalCdf::from_samples(&samples);
        prop_assert!(close(cdf.quantile(0.0), cdf.min()));
        let mut previous = cdf.quantile(0.0);
        for step in 1..=100 {
            let value = cdf.quantile(step as f64 / 100.0);
            prop_assert!(
                value >= previous,
                "quantile regressed at q={}: {} < {}",
                step as f64 / 100.0,
                value,
                previous
            );
            previous = value;
        }
        prop_assert!(close(cdf.quantile(1.0), cdf.max()));
    }

    /// NaN samples are rejected without touching the accumulated statistics: the
    /// polluted stream is bit-identical to the clean stream in every statistic, and
    /// the rejects are tallied.
    #[test]
    fn online_stats_reject_nan_without_poisoning(
        samples in prop::collection::vec(-1_000.0f64..1_000.0, 1..64),
        nan_positions in prop::collection::vec(0usize..64, 0..16),
    ) {
        let mut clean = OnlineStats::new();
        for sample in &samples {
            clean.push(*sample);
        }
        let mut polluted = OnlineStats::new();
        let mut injected = 0u64;
        for (index, sample) in samples.iter().enumerate() {
            if nan_positions.contains(&index) {
                polluted.push(f64::NAN);
                injected += 1;
            }
            polluted.push(*sample);
        }
        prop_assert_eq!(polluted.count(), clean.count());
        prop_assert_eq!(polluted.nan_count(), injected);
        prop_assert_eq!(polluted.mean().to_bits(), clean.mean().to_bits());
        prop_assert_eq!(polluted.variance().to_bits(), clean.variance().to_bits());
        prop_assert_eq!(polluted.min().to_bits(), clean.min().to_bits());
        prop_assert_eq!(polluted.max().to_bits(), clean.max().to_bits());
        prop_assert!(!polluted.mean().is_nan());
    }

    /// The online CoV is non-negative for any stream, and a stream mirrored through
    /// zero reports exactly the same relative dispersion.
    #[test]
    fn online_cov_is_sign_invariant(
        samples in prop::collection::vec(1.0f64..2_000.0, 2..64),
    ) {
        let mut positive = OnlineStats::new();
        let mut negative = OnlineStats::new();
        for sample in &samples {
            positive.push(*sample);
            negative.push(-*sample);
        }
        prop_assert!(negative.mean() < 0.0);
        prop_assert!(positive.coefficient_of_variation() >= 0.0);
        prop_assert!(negative.coefficient_of_variation() >= 0.0);
        prop_assert!(close(
            negative.coefficient_of_variation(),
            positive.coefficient_of_variation()
        ));
    }

    /// A drift detector over a bounded stationary stream never fires, while the same
    /// stream with a large persistent level shift planted after calibration always
    /// fires upward within a bounded number of post-shift samples.
    #[test]
    fn drift_detector_separates_stationary_from_shifted(
        base in 50.0f64..500.0,
        wobble in prop::collection::vec(-1.0f64..1.0, 96..128),
    ) {
        let config = DriftConfig { warmup: 32, ..DriftConfig::default() };
        // Stationary: bounded wobble around the base level never accumulates.
        let mut stationary = DriftDetector::new(config);
        for w in &wobble {
            prop_assert_eq!(stationary.push(base * (1.0 + 0.05 * w)), None);
        }
        // Shifted: after calibration, a persistent 80% slowdown confirms quickly.
        let mut shifted = DriftDetector::new(config);
        for w in wobble.iter().take(32) {
            shifted.push(base * (1.0 + 0.05 * w));
        }
        let fired = wobble
            .iter()
            .skip(32)
            .position(|w| shifted.push(base * 1.8 * (1.0 + 0.05 * w)).is_some());
        prop_assert!(
            fired.is_some_and(|n| n < 24),
            "planted shift not confirmed within 24 samples (got {:?})",
            fired
        );
    }

    /// The coefficient of variation is invariant under a positive change of units.
    #[test]
    fn coefficient_of_variation_is_scale_invariant(
        samples in prop::collection::vec(1.0f64..2_000.0, 2..100),
        scale in 0.001f64..1_000.0,
    ) {
        let scaled: Vec<f64> = samples.iter().map(|s| s * scale).collect();
        let original = coefficient_of_variation(&samples);
        let rescaled = coefficient_of_variation(&scaled);
        prop_assert!(
            close(rescaled, original),
            "CoV changed under scaling by {scale}: {original} vs {rescaled}"
        );
    }
}
