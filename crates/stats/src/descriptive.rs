//! Batch descriptive statistics over slices of `f64` samples.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of `samples`.
///
/// Returns `0.0` for an empty slice so that callers reporting aggregate rows do not need
/// to special-case missing data.
///
/// ```
/// assert_eq!(dg_stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(dg_stats::mean(&[]), 0.0);
/// ```
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Geometric mean of strictly positive `samples`.
///
/// Used when averaging ratios (e.g. speedups over the Oracle across applications).
/// Non-positive samples are skipped.
///
/// ```
/// let gm = dg_stats::geometric_mean(&[1.0, 4.0]);
/// assert!((gm - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(samples: &[f64]) -> f64 {
    let positive: Vec<f64> = samples.iter().copied().filter(|v| *v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = positive.iter().map(|v| v.ln()).sum();
    (log_sum / positive.len() as f64).exp()
}

/// Unbiased sample variance (`n - 1` denominator).
///
/// Returns `0.0` when fewer than two samples are provided.
pub fn sample_variance(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (samples.len() - 1) as f64
}

/// Population variance (`n` denominator).
///
/// Returns `0.0` for an empty slice.
pub fn population_variance(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let m = mean(samples);
    samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(samples: &[f64]) -> f64 {
    sample_variance(samples).sqrt()
}

/// Coefficient of variation expressed as a *percentage* (`100 * stddev / mean`).
///
/// This is the headline variability metric of the paper (e.g. "less than 0.5%"
/// performance variation for DarwinGame's chosen configuration). Returns `0.0` when the
/// mean is zero or there are fewer than two samples.
///
/// ```
/// let cov = dg_stats::coefficient_of_variation(&[100.0, 100.0, 100.0]);
/// assert_eq!(cov, 0.0);
/// ```
pub fn coefficient_of_variation(samples: &[f64]) -> f64 {
    let m = mean(samples);
    if m.abs() < f64::EPSILON || samples.len() < 2 {
        return 0.0;
    }
    100.0 * std_dev(samples) / m
}

/// Median (50th percentile) of `samples`.
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// Linear-interpolated percentile in `[0, 100]`.
///
/// # Panics
///
/// Panics if `pct` is outside `[0, 100]` or is not finite.
pub fn percentile(samples: &[f64], pct: f64) -> f64 {
    assert!(
        pct.is_finite() && (0.0..=100.0).contains(&pct),
        "percentile must be within [0, 100], got {pct}"
    );
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lower = rank.floor() as usize;
    let upper = rank.ceil() as usize;
    let weight = rank - lower as f64;
    sorted[lower] * (1.0 - weight) + sorted[upper] * weight
}

/// Relative change from `reference` to `value`, expressed as a percentage.
///
/// Positive values mean `value` is larger than `reference`. Used throughout the
/// experiment harnesses to report "X% more execution time than the Oracle".
///
/// ```
/// assert_eq!(dg_stats::percent_change(110.0, 100.0), 10.0);
/// ```
pub fn percent_change(value: f64, reference: f64) -> f64 {
    if reference.abs() < f64::EPSILON {
        return 0.0;
    }
    100.0 * (value - reference) / reference
}

/// A complete five-number-plus summary of a set of samples.
///
/// `Summary` is the value most experiment harnesses attach to each reported row: it packs
/// the mean, spread, and variability of a batch of simulated execution times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
    median: f64,
    p5: f64,
    p95: f64,
}

impl Summary {
    /// Builds a summary from a slice of samples.
    ///
    /// An empty slice yields an all-zero summary; this keeps report generation total.
    pub fn from_slice(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p5: 0.0,
                p95: 0.0,
            };
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            count: samples.len(),
            mean: mean(samples),
            std_dev: std_dev(samples),
            min,
            max,
            median: median(samples),
            p5: percentile(samples, 5.0),
            p95: percentile(samples, 95.0),
        }
    }

    /// Number of samples summarised.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Median sample.
    pub fn median(&self) -> f64 {
        self.median
    }

    /// 5th percentile.
    pub fn p5(&self) -> f64 {
        self.p5
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.p95
    }

    /// Coefficient of variation as a percentage.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            100.0 * self.std_dev / self.mean
        }
    }

    /// Half-width of the min–max range, handy for error bars.
    pub fn range_half_width(&self) -> f64 {
        (self.max - self.min) / 2.0
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::from_slice(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[2.0, 4.0, 6.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_skips_non_positive() {
        let gm = geometric_mean(&[-1.0, 0.0, 2.0, 8.0]);
        assert!((gm - 4.0).abs() < 1e-12);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(sample_variance(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(population_variance(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn sample_variance_known_value() {
        // Var([1, 2, 3, 4]) with n-1 denominator = 5/3.
        let v = sample_variance(&[1.0, 2.0, 3.0, 4.0]);
        assert!((v - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cov_zero_for_constant_series() {
        assert_eq!(coefficient_of_variation(&[5.0; 10]), 0.0);
    }

    #[test]
    fn cov_percentage_scale() {
        // std of [90, 110] = ~14.14, mean = 100 -> CoV ~14.14%
        let cov = coefficient_of_variation(&[90.0, 110.0]);
        assert!((cov - 14.142135623730951).abs() < 1e-9);
    }

    #[test]
    fn percentile_endpoints() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 5.0);
        assert_eq!(percentile(&s, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let s = [0.0, 10.0];
        assert!((percentile(&s, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile must be within")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 120.0);
    }

    #[test]
    fn percent_change_sign() {
        assert!(percent_change(90.0, 100.0) < 0.0);
        assert!(percent_change(110.0, 100.0) > 0.0);
        assert_eq!(percent_change(1.0, 0.0), 0.0);
    }

    #[test]
    fn summary_round_trip() {
        let samples = [230.0, 240.0, 260.0, 300.0, 792.0];
        let s = Summary::from_slice(&samples);
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), 230.0);
        assert_eq!(s.max(), 792.0);
        assert_eq!(s.median(), 260.0);
        assert!(s.coefficient_of_variation() > 0.0);
        assert!(s.p95() <= s.max() && s.p5() >= s.min());
    }

    #[test]
    fn summary_empty_is_all_zero() {
        let s = Summary::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn median_even_count() {
        assert!((median(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-12);
    }
}
