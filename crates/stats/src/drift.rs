//! Change-point detection over a streaming series of observations.
//!
//! [`DriftDetector`] watches a stream of noisy measurements (a deployed champion's
//! observed execution times, say) and decides when the *regime* generating them has
//! changed — not just a bad sample, but a persistent level shift. It calibrates a
//! reference window with [`OnlineStats`], normalises each later sample into a z-score
//! against that frozen reference, and accumulates the normalised deviations through a
//! two-sided CUSUM (Page–Hinkley) statistic. A single outlier adds a bounded amount of
//! mass (z-scores are clamped) that subsequent in-regime samples drain away; a
//! sustained shift accumulates linearly and crosses the threshold within a handful of
//! samples.
//!
//! [`Ewma`] is the companion recency-weighted view: an exponentially weighted mean and
//! variance plus a hit counter, the "current belief" a monitor reports while the
//! detector decides whether that belief still describes the same regime.

use crate::online::OnlineStats;
use serde::{Deserialize, Serialize};

/// Which way the stream moved when a drift was confirmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftDirection {
    /// The level rose (observed times got worse — a slowdown regime).
    Up,
    /// The level fell (observed times improved — pressure released).
    Down,
}

/// Tuning knobs for a [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Samples used to calibrate the frozen reference mean/deviation before any
    /// detection can fire. Must be at least 2.
    pub warmup: u32,
    /// Per-sample drift tolerance in reference standard deviations: deviations below
    /// `delta` never accumulate, so ordinary noise drains the statistic instead of
    /// feeding it.
    pub delta: f64,
    /// Detection threshold on the accumulated (clamped, normalised) deviation mass.
    pub lambda: f64,
    /// Z-scores are clamped to `[-clamp_z, clamp_z]` before accumulating, bounding how
    /// much mass any single spike can contribute.
    pub clamp_z: f64,
    /// Floor on the reference standard deviation, as a fraction of the reference
    /// |mean|: a suspiciously quiet calibration window cannot make the detector
    /// hair-triggered.
    pub min_rel_std: f64,
}

impl Default for DriftConfig {
    /// Calibrate on 32 samples, tolerate half a standard deviation of drift, confirm
    /// after twelve sigmas of accumulated one-sided evidence, clamp spikes at 6σ, and
    /// never trust a reference deviation tighter than 8% of the mean.
    fn default() -> Self {
        Self {
            warmup: 32,
            delta: 0.5,
            lambda: 12.0,
            clamp_z: 6.0,
            min_rel_std: 0.08,
        }
    }
}

impl DriftConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when `warmup < 2`, any threshold is not finite and strictly positive, or
    /// `min_rel_std` is negative.
    pub fn validate(&self) {
        assert!(self.warmup >= 2, "warmup needs at least 2 samples");
        assert!(
            self.delta.is_finite() && self.delta > 0.0,
            "delta must be > 0"
        );
        assert!(
            self.lambda.is_finite() && self.lambda > 0.0,
            "lambda must be > 0"
        );
        assert!(
            self.clamp_z.is_finite() && self.clamp_z > self.delta,
            "clamp_z must exceed delta"
        );
        assert!(
            self.min_rel_std.is_finite() && self.min_rel_std >= 0.0,
            "min_rel_std must be >= 0"
        );
    }
}

/// Two-sided CUSUM / Page–Hinkley change-point detector over an [`OnlineStats`]
/// calibration stream.
///
/// ```
/// use dg_stats::{DriftConfig, DriftDetector, DriftDirection};
///
/// let mut detector = DriftDetector::new(DriftConfig {
///     warmup: 8,
///     ..DriftConfig::default()
/// });
/// for i in 0..8 {
///     assert_eq!(detector.push(100.0 + (i % 2) as f64), None);
/// }
/// // A persistent 60% slowdown is confirmed within a few samples.
/// let fired = (0..10).find_map(|_| detector.push(160.0));
/// assert_eq!(fired, Some(DriftDirection::Up));
/// ```
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    /// The calibration accumulator; frozen once `warmup` samples have arrived.
    reference: OnlineStats,
    /// Frozen `(mean, std)` once calibration completes.
    frozen: Option<(f64, f64)>,
    /// Upward (slowdown) CUSUM mass.
    cusum_up: f64,
    /// Downward (speedup) CUSUM mass.
    cusum_down: f64,
    samples: u64,
}

impl DriftDetector {
    /// Creates a detector with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see [`DriftConfig::validate`]).
    pub fn new(config: DriftConfig) -> Self {
        config.validate();
        Self {
            config,
            reference: OnlineStats::new(),
            frozen: None,
            cusum_up: 0.0,
            cusum_down: 0.0,
            samples: 0,
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// The calibration statistics (frozen after `warmup` samples).
    pub fn reference(&self) -> &OnlineStats {
        &self.reference
    }

    /// Non-NaN samples seen so far (calibration included).
    pub fn samples_seen(&self) -> u64 {
        self.samples
    }

    /// True once the calibration window is full and detection is armed.
    pub fn calibrated(&self) -> bool {
        self.frozen.is_some()
    }

    /// The current accumulated `(up, down)` CUSUM mass (0 until calibrated).
    pub fn pressure(&self) -> (f64, f64) {
        (self.cusum_up, self.cusum_down)
    }

    /// Feeds one observation. Returns the confirmed drift direction the first time the
    /// accumulated evidence crosses `lambda`; the caller decides what to do (usually
    /// [`reset`](Self::reset) after acting). NaN samples are ignored entirely — the
    /// calibration accumulator already rejects them, and feeding the CUSUM a NaN would
    /// poison the mass.
    pub fn push(&mut self, value: f64) -> Option<DriftDirection> {
        if value.is_nan() {
            return None;
        }
        self.samples += 1;
        let (mean, std) = match self.frozen {
            None => {
                self.reference.push(value);
                if self.reference.count() >= u64::from(self.config.warmup) {
                    let mean = self.reference.mean();
                    let std = self
                        .reference
                        .std_dev()
                        .max(self.config.min_rel_std * mean.abs())
                        .max(f64::EPSILON);
                    self.frozen = Some((mean, std));
                }
                return None;
            }
            Some(frozen) => frozen,
        };
        let z = ((value - mean) / std).clamp(-self.config.clamp_z, self.config.clamp_z);
        self.cusum_up = (self.cusum_up + z - self.config.delta).max(0.0);
        self.cusum_down = (self.cusum_down - z - self.config.delta).max(0.0);
        if self.cusum_up > self.config.lambda {
            Some(DriftDirection::Up)
        } else if self.cusum_down > self.config.lambda {
            Some(DriftDirection::Down)
        } else {
            None
        }
    }

    /// Clears all state and recalibrates from scratch — call after acting on a
    /// confirmed drift so the new regime becomes the new reference.
    pub fn reset(&mut self) {
        self.reference = OnlineStats::new();
        self.frozen = None;
        self.cusum_up = 0.0;
        self.cusum_down = 0.0;
        self.samples = 0;
    }
}

/// An exponentially weighted moving average with variance and a hit counter: the
/// recency-weighted "current belief" view of a monitored stream.
///
/// The weighting follows the standard EWMA recurrences (`West 1979` incremental
/// form): `mean ← mean + α(x − mean)`, `var ← (1 − α)(var + α(x − mean)²)`. The hit
/// count is the confidence gate — callers should not act on the belief until
/// enough samples have arrived ([`confident`](Self::confident)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    mean: f64,
    variance: f64,
    hits: u64,
}

impl Ewma {
    /// Creates an empty EWMA with smoothing factor `alpha` in `(0, 1]`; larger values
    /// weight recent samples more heavily.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        Self {
            alpha,
            mean: 0.0,
            variance: 0.0,
            hits: 0,
        }
    }

    /// Adds one observation (NaN samples are ignored, mirroring [`OnlineStats`]).
    pub fn push(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.hits += 1;
        if self.hits == 1 {
            self.mean = value;
            self.variance = 0.0;
            return;
        }
        let delta = value - self.mean;
        self.mean += self.alpha * delta;
        self.variance = (1.0 - self.alpha) * (self.variance + self.alpha * delta * delta);
    }

    /// The recency-weighted mean, or 0 before any sample.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The recency-weighted variance.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// The recency-weighted standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Number of samples absorbed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// True once at least `min_hits` samples have been absorbed — the hit-count
    /// confidence gate.
    pub fn confident(&self, min_hits: u64) -> bool {
        self.hits >= min_hits
    }

    /// Clears the average.
    pub fn reset(&mut self) {
        self.mean = 0.0;
        self.variance = 0.0;
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(warmup: u32) -> DriftConfig {
        DriftConfig {
            warmup,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn no_detection_during_warmup() {
        let mut detector = DriftDetector::new(config(16));
        for i in 0..15 {
            assert_eq!(detector.push(1000.0 * (i + 1) as f64), None);
            assert!(!detector.calibrated());
        }
        detector.push(5.0);
        assert!(detector.calibrated());
    }

    #[test]
    fn steady_noise_never_fires() {
        let mut detector = DriftDetector::new(config(32));
        // A deterministic bounded oscillation around 100.
        let sample = |i: u64| 100.0 + 8.0 * ((i as f64 * 0.7).sin() + (i as f64 * 0.31).cos());
        for i in 0..1000 {
            assert_eq!(detector.push(sample(i)), None, "fired at sample {i}");
        }
    }

    #[test]
    fn sustained_shift_is_detected_quickly_and_in_the_right_direction() {
        let mut up = DriftDetector::new(config(16));
        for i in 0..16 {
            up.push(100.0 + (i % 3) as f64);
        }
        let fired_after = (0..20).position(|_| up.push(160.0).is_some());
        assert!(
            fired_after.is_some_and(|n| n < 12),
            "a 60% shift must confirm within a dozen samples (got {fired_after:?})"
        );

        let mut down = DriftDetector::new(config(16));
        for i in 0..16 {
            down.push(100.0 + (i % 3) as f64);
        }
        let fired = (0..20).find_map(|_| down.push(55.0));
        assert_eq!(fired, Some(DriftDirection::Down));
    }

    #[test]
    fn single_spikes_are_absorbed() {
        let mut detector = DriftDetector::new(config(16));
        for i in 0..16 {
            detector.push(100.0 + (i % 4) as f64);
        }
        for round in 0..50 {
            // One wild outlier every 10 samples, otherwise in-regime.
            let value = if round % 10 == 0 { 400.0 } else { 101.0 };
            assert_eq!(detector.push(value), None, "fired at round {round}");
        }
    }

    #[test]
    fn nan_samples_are_ignored() {
        let mut detector = DriftDetector::new(config(4));
        for _ in 0..4 {
            detector.push(10.0);
        }
        let before = detector.samples_seen();
        assert_eq!(detector.push(f64::NAN), None);
        assert_eq!(detector.samples_seen(), before);
        assert_eq!(detector.pressure(), (0.0, 0.0));
    }

    #[test]
    fn reset_recalibrates() {
        let mut detector = DriftDetector::new(config(4));
        for _ in 0..4 {
            detector.push(10.0);
        }
        let fired = (0..30).find_map(|_| detector.push(30.0));
        assert!(fired.is_some());
        detector.reset();
        assert!(!detector.calibrated());
        // The new regime calibrates cleanly; staying there never fires.
        for i in 0..40 {
            assert_eq!(detector.push(30.0 + (i % 2) as f64), None);
        }
    }

    #[test]
    fn ewma_tracks_level_changes_with_recency_weighting() {
        let mut ewma = Ewma::new(0.3);
        assert!(!ewma.confident(1));
        for _ in 0..20 {
            ewma.push(100.0);
        }
        assert!((ewma.mean() - 100.0).abs() < 1e-9);
        assert!(ewma.confident(20));
        for _ in 0..20 {
            ewma.push(200.0);
        }
        assert!(
            ewma.mean() > 195.0,
            "after 20 samples at the new level the belief must have moved (got {})",
            ewma.mean()
        );
        ewma.push(f64::NAN);
        assert_eq!(ewma.hits(), 40, "NaN must not count as a hit");
        ewma.reset();
        assert_eq!(ewma.hits(), 0);
        assert_eq!(ewma.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "clamp_z must exceed delta")]
    fn detector_rejects_inverted_clamp() {
        DriftDetector::new(DriftConfig {
            clamp_z: 0.1,
            ..DriftConfig::default()
        });
    }
}
