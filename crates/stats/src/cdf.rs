//! Empirical cumulative distribution functions.
//!
//! Figure 1 of the paper plots CDFs of execution time over randomly sampled tuning
//! configurations and over repeated runs of fixed configurations. [`EmpiricalCdf`] is the
//! shared representation the bench harnesses use to emit those series.

use serde::{Deserialize, Serialize};

/// An empirical CDF built from a finite sample set.
///
/// Samples are stored sorted; evaluation is a binary search, quantiles are linear
/// interpolation over the order statistics.
///
/// ```
/// use dg_stats::EmpiricalCdf;
/// let cdf = EmpiricalCdf::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.quantile(1.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds a CDF from an arbitrary (unsorted) sample slice.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        assert!(
            sorted.iter().all(|v| !v.is_nan()),
            "CDF samples must not contain NaN"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Self { sorted }
    }

    /// Merges another CDF into this one (parallel/sharded reduction).
    ///
    /// Both sides are already sorted, so this is a linear two-way merge; the result is
    /// *exactly* the CDF that [`from_samples`](Self::from_samples) would build over the
    /// concatenated sample sets — the full sample list is kept, so quantiles of merged
    /// partials equal single-pass quantiles bit for bit.
    pub fn merge(&mut self, other: &EmpiricalCdf) {
        if other.sorted.is_empty() {
            return;
        }
        let mine = std::mem::take(&mut self.sorted);
        let mut merged = Vec::with_capacity(mine.len() + other.sorted.len());
        let (mut i, mut j) = (0, 0);
        while i < mine.len() && j < other.sorted.len() {
            if mine[i] <= other.sorted[j] {
                merged.push(mine[i]);
                i += 1;
            } else {
                merged.push(other.sorted[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&mine[i..]);
        merged.extend_from_slice(&other.sorted[j..]);
        self.sorted = merged;
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= value`, in `[0, 1]`.
    pub fn fraction_at_or_below(&self, value: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= value);
        count as f64 / self.sorted.len() as f64
    }

    /// Value below which a fraction `q` of the samples fall (`q` in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`, or if the CDF is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile fraction must be within [0, 1], got {q}"
        );
        assert!(!self.sorted.is_empty(), "quantile of an empty CDF");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let rank = q * (self.sorted.len() - 1) as f64;
        let lower = rank.floor() as usize;
        let upper = rank.ceil() as usize;
        let weight = rank - lower as f64;
        self.sorted[lower] * (1.0 - weight) + self.sorted[upper] * weight
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of an empty CDF")
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of an empty CDF")
    }

    /// Iterator over `(value, cumulative_fraction)` pairs, one per sample, suitable for
    /// plotting or printing a CDF series.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, v)| (*v, (i + 1) as f64 / n))
    }

    /// Returns `step` evenly spaced `(value, fraction)` points between the min and max of
    /// the sample set, which is how the benches downsample large CDFs for textual output.
    ///
    /// Returns an empty vector if the CDF is empty or `steps == 0`.
    pub fn sampled_points(&self, steps: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || steps == 0 {
            return Vec::new();
        }
        let lo = self.min();
        let hi = self.max();
        (0..=steps)
            .map(|i| {
                let v = lo + (hi - lo) * i as f64 / steps as f64;
                (v, self.fraction_at_or_below(v))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_is_monotone() {
        let cdf = EmpiricalCdf::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let mut prev = 0.0;
        for v in [0.0, 1.0, 1.5, 2.0, 3.0, 4.5, 5.0, 6.0] {
            let f = cdf.fraction_at_or_below(v);
            assert!(f >= prev, "CDF must be non-decreasing");
            prev = f;
        }
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(5.0), 1.0);
    }

    #[test]
    fn quantile_endpoints_match_min_max() {
        let cdf = EmpiricalCdf::from_samples(&[10.0, 20.0, 30.0]);
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(1.0), 30.0);
        assert_eq!(cdf.min(), 10.0);
        assert_eq!(cdf.max(), 30.0);
    }

    #[test]
    fn quantile_interpolation() {
        let cdf = EmpiricalCdf::from_samples(&[0.0, 10.0]);
        assert!((cdf.quantile(0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn points_cover_all_samples() {
        let cdf = EmpiricalCdf::from_samples(&[3.0, 1.0, 2.0]);
        let pts: Vec<_> = cdf.points().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (3.0, 1.0));
    }

    #[test]
    fn sampled_points_bounds() {
        let cdf = EmpiricalCdf::from_samples(&[2.0, 4.0, 8.0]);
        let pts = cdf.sampled_points(4);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts.first().unwrap().0, 2.0);
        assert_eq!(pts.last().unwrap().0, 8.0);
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn merge_equals_from_samples_over_concatenation() {
        let a_samples = [5.0, 1.0, 3.0];
        let b_samples = [4.0, 2.0, 6.0, 0.5];
        let mut merged = EmpiricalCdf::from_samples(&a_samples);
        merged.merge(&EmpiricalCdf::from_samples(&b_samples));

        let mut all: Vec<f64> = a_samples.to_vec();
        all.extend_from_slice(&b_samples);
        let whole = EmpiricalCdf::from_samples(&all);
        assert_eq!(merged, whole);
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(merged.quantile(q).to_bits(), whole.quantile(q).to_bits());
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut cdf = EmpiricalCdf::from_samples(&[1.0, 2.0]);
        let before = cdf.clone();
        cdf.merge(&EmpiricalCdf::from_samples(&[]));
        assert_eq!(cdf, before);

        let mut empty = EmpiricalCdf::from_samples(&[]);
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_cdf_is_safe_for_fraction() {
        let cdf = EmpiricalCdf::from_samples(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert!(cdf.sampled_points(10).is_empty());
    }

    #[test]
    #[should_panic(expected = "quantile of an empty CDF")]
    fn empty_cdf_quantile_panics() {
        EmpiricalCdf::from_samples(&[]).quantile(0.5);
    }

    #[test]
    #[should_panic(expected = "must not contain NaN")]
    fn nan_samples_rejected() {
        EmpiricalCdf::from_samples(&[1.0, f64::NAN]);
    }
}
