//! Fixed-width histograms for textual distribution reports.

use serde::{Deserialize, Serialize};

/// A fixed-bin histogram over a closed range `[lo, hi]`.
///
/// Values outside the range are clamped into the first/last bin so that no sample is ever
/// silently dropped (the experiment harnesses always report totals).
///
/// ```
/// use dg_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.add(1.0);
/// h.add(9.5);
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[4], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if `lo >= hi`, or if either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "histogram range must be non-empty (lo < hi)");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one sample, clamping it into the covered range.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let clamped = value.clamp(self.lo, self.hi);
        let width = (self.hi - self.lo) / bins as f64;
        let mut idx = ((clamped - self.lo) / width) as usize;
        if idx >= bins {
            idx = bins - 1;
        }
        self.counts[idx] += 1;
    }

    /// Adds every sample from `values`.
    pub fn extend_from_slice(&mut self, values: &[f64]) {
        for v in values {
            self.add(*v);
        }
    }

    /// Merges another histogram into this one (parallel/sharded reduction).
    ///
    /// Because bins are fixed at construction, merging partials built over disjoint
    /// sample subsets is *exact*: the merged counts equal single-pass accumulation over
    /// the concatenated samples.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms differ in range or bin count — partials are only
    /// mergeable when they were constructed identically.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo.to_bits() == other.lo.to_bits()
                && self.hi.to_bits() == other.hi.to_bits()
                && self.counts.len() == other.counts.len(),
            "histogram merge requires identical range and bin count \
             (self: [{}, {}] x{}, other: [{}, {}] x{})",
            self.lo,
            self.hi,
            self.counts.len(),
            other.lo,
            other.hi,
            other.counts.len()
        );
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples added.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Lower bound of the covered range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the covered range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Fraction of samples in bin `i`, or 0 if the histogram is empty.
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.add(5.0);
        h.add(15.0);
        h.add(99.9);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.add(-5.0);
        h.add(25.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
    }

    #[test]
    fn upper_bound_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(10.0);
        assert_eq!(h.counts()[4], 1);
    }

    #[test]
    fn bin_center_and_fraction() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend_from_slice(&[1.0, 1.5, 9.0]);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.fraction(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_pass_accumulation() {
        let all = [0.5, 1.5, 2.5, 3.5, 4.5, 9.9, -1.0, 12.0];
        let mut whole = Histogram::new(0.0, 10.0, 5);
        whole.extend_from_slice(&all);

        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.extend_from_slice(&all[..3]);
        b.extend_from_slice(&all[3..]);
        a.merge(&b);
        assert_eq!(
            a, whole,
            "merged partials must equal the single-pass result"
        );
        assert_eq!(a.total(), all.len() as u64);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new(0.0, 10.0, 4);
        h.extend_from_slice(&[1.0, 2.0, 3.0]);
        let before = h.clone();
        h.merge(&Histogram::new(0.0, 10.0, 4));
        assert_eq!(h, before);
    }

    #[test]
    #[should_panic(expected = "identical range and bin count")]
    fn merge_with_mismatched_bins_rejected() {
        let mut a = Histogram::new(0.0, 10.0, 4);
        a.merge(&Histogram::new(0.0, 10.0, 5));
    }

    #[test]
    #[should_panic(expected = "identical range and bin count")]
    fn merge_with_mismatched_range_rejected() {
        let mut a = Histogram::new(0.0, 10.0, 4);
        a.merge(&Histogram::new(0.0, 20.0, 4));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn inverted_range_rejected() {
        Histogram::new(1.0, 1.0, 4);
    }
}
