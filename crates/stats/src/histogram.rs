//! Fixed-width histograms for textual distribution reports.

use serde::{Deserialize, Serialize};

/// A fixed-bin histogram over a closed range `[lo, hi]`.
///
/// Values outside the range are clamped into the first/last bin so that no sample is ever
/// silently dropped (the experiment harnesses always report totals).
///
/// ```
/// use dg_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.add(1.0);
/// h.add(9.5);
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[4], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, if `lo >= hi`, or if either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "histogram range must be non-empty (lo < hi)");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one sample, clamping it into the covered range.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let clamped = value.clamp(self.lo, self.hi);
        let width = (self.hi - self.lo) / bins as f64;
        let mut idx = ((clamped - self.lo) / width) as usize;
        if idx >= bins {
            idx = bins - 1;
        }
        self.counts[idx] += 1;
    }

    /// Adds every sample from `values`.
    pub fn extend_from_slice(&mut self, values: &[f64]) {
        for v in values {
            self.add(*v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples added.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Lower bound of the covered range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the covered range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Fraction of samples in bin `i`, or 0 if the histogram is empty.
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.add(5.0);
        h.add(15.0);
        h.add(99.9);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.add(-5.0);
        h.add(25.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
    }

    #[test]
    fn upper_bound_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(10.0);
        assert_eq!(h.counts()[4], 1);
    }

    #[test]
    fn bin_center_and_fraction() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend_from_slice(&[1.0, 1.5, 9.0]);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.fraction(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn inverted_range_rejected() {
        Histogram::new(1.0, 1.0, 4);
    }
}
