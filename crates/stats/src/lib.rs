//! Descriptive statistics and reporting helpers for the DarwinGame reproduction.
//!
//! The DarwinGame paper reports its results almost exclusively through a handful of
//! statistics: means, coefficients of variation, empirical CDFs, and percentage
//! differences between solutions. This crate collects those primitives so that the
//! simulator ([`dg_cloudsim`]), the tuners, and the benchmark harnesses all compute them
//! in exactly the same way.
//!
//! # Quick example
//!
//! ```
//! use dg_stats::{Summary, EmpiricalCdf};
//!
//! let samples = vec![230.0, 240.0, 260.0, 300.0, 792.0];
//! let summary = Summary::from_slice(&samples);
//! assert!(summary.mean() > 300.0);
//! assert!(summary.coefficient_of_variation() > 0.0);
//!
//! let cdf = EmpiricalCdf::from_samples(&samples);
//! assert_eq!(cdf.quantile(0.0), 230.0);
//! assert_eq!(cdf.quantile(1.0), 792.0);
//! ```
//!
//! [`dg_cloudsim`]: https://docs.rs/dg-cloudsim

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod descriptive;
mod drift;
mod histogram;
mod online;
mod table;

pub use cdf::EmpiricalCdf;
pub use descriptive::{
    coefficient_of_variation, geometric_mean, mean, median, percent_change, percentile,
    population_variance, sample_variance, std_dev, Summary,
};
pub use drift::{DriftConfig, DriftDetector, DriftDirection, Ewma};
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use table::{format_row, Alignment, Column, Table};
