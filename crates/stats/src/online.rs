//! Streaming (single-pass) statistics.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
///
/// Used inside the simulator and tournament driver where samples arrive one at a time
/// (e.g. the running consistency statistics of a player) and storing every observation
/// would be wasteful.
///
/// ```
/// use dg_stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 6.0] {
///     s.push(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    nan_count: u64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            nan_count: 0,
        }
    }

    /// Adds one observation.
    ///
    /// NaN samples are rejected rather than accumulated: a single NaN would poison
    /// `mean`/`m2` forever while `f64::min`/`f64::max` silently dropped it, leaving the
    /// accumulator internally inconsistent. Rejected samples are tallied in
    /// [`nan_count`](Self::nan_count) so callers can still see that the stream
    /// misbehaved.
    pub fn push(&mut self, value: f64) {
        if value.is_nan() {
            self.nan_count += 1;
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        self.nan_count += other.nan_count;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let nan_count = self.nan_count;
            *self = *other;
            self.nan_count = nan_count;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = new_mean;
        self.m2 = new_m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations pushed so far (NaN rejects excluded).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of NaN samples rejected by [`push`](Self::push) so far.
    pub fn nan_count(&self) -> u64 {
        self.nan_count
    }

    /// Running mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation as a percentage, or 0 when undefined. The denominator
    /// is `|mean|`, so a negative-mean stream reports the same (non-negative) relative
    /// dispersion as its mirror image.
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m.abs() < f64::EPSILON || self.count < 2 {
            0.0
        } else {
            100.0 * self.std_dev() / m.abs()
        }
    }

    /// Smallest observation, or +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    #[test]
    fn matches_batch_statistics() {
        let samples = [3.0, 7.0, 7.0, 19.0, 24.0, 4.5];
        let mut online = OnlineStats::new();
        for s in samples {
            online.push(s);
        }
        assert!((online.mean() - descriptive::mean(&samples)).abs() < 1e-12);
        assert!((online.variance() - descriptive::sample_variance(&samples)).abs() < 1e-9);
        assert_eq!(online.min(), 3.0);
        assert_eq!(online.max(), 24.0);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn merge_equals_sequential_push() {
        let a_samples = [1.0, 2.0, 3.0];
        let b_samples = [10.0, 20.0, 30.0, 40.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for s in a_samples {
            a.push(s);
        }
        for s in b_samples {
            b.push(s);
        }
        let mut merged = a;
        merged.merge(&b);

        let mut sequential = OnlineStats::new();
        for s in a_samples.iter().chain(b_samples.iter()) {
            sequential.push(*s);
        }
        assert_eq!(merged.count(), sequential.count());
        assert!((merged.mean() - sequential.mean()).abs() < 1e-12);
        assert!((merged.variance() - sequential.variance()).abs() < 1e-9);
    }

    #[test]
    fn nan_samples_are_rejected_and_counted() {
        let mut s = OnlineStats::new();
        s.push(2.0);
        s.push(f64::NAN);
        s.push(4.0);
        s.push(f64::NAN);
        assert_eq!(s.count(), 2);
        assert_eq!(s.nan_count(), 2);
        assert_eq!(s.mean(), 3.0);
        assert!(s.variance().is_finite());
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 4.0);

        let mut clean = OnlineStats::new();
        clean.push(2.0);
        clean.push(4.0);
        assert_eq!(s.mean().to_bits(), clean.mean().to_bits());
        assert_eq!(s.variance().to_bits(), clean.variance().to_bits());
    }

    #[test]
    fn merge_sums_nan_counts() {
        let mut a = OnlineStats::new();
        a.push(f64::NAN);
        a.push(1.0);
        let mut b = OnlineStats::new();
        b.push(f64::NAN);
        b.push(f64::NAN);
        b.push(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.nan_count(), 3);

        // Merging into an empty accumulator keeps its own NaN tally too.
        let mut empty = OnlineStats::new();
        empty.push(f64::NAN);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.nan_count(), 3);
    }

    #[test]
    fn cov_is_non_negative_for_negative_mean_streams() {
        let mut negative = OnlineStats::new();
        let mut positive = OnlineStats::new();
        for v in [10.0, 12.0, 20.0] {
            negative.push(-v);
            positive.push(v);
        }
        assert!(negative.mean() < 0.0);
        assert!(negative.coefficient_of_variation() > 0.0);
        assert_eq!(
            negative.coefficient_of_variation().to_bits(),
            positive.coefficient_of_variation().to_bits(),
            "a mirrored stream has identical relative dispersion"
        );
        // Zero-mean streams stay at the 0 sentinel (the ratio is undefined).
        let mut zero = OnlineStats::new();
        zero.push(-1.0);
        zero.push(1.0);
        assert_eq!(zero.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
