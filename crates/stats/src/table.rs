//! Plain-text table formatting used by the benchmark harnesses.
//!
//! Every experiment bench prints its result as a small aligned table so that the
//! `bench_output.txt` transcript can be compared side by side with the paper's figures.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Horizontal alignment of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Alignment {
    /// Pad on the right.
    #[default]
    Left,
    /// Pad on the left.
    Right,
}

/// A single column description: header text plus alignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Header text printed on the first row.
    pub header: String,
    /// Cell alignment for the column.
    pub align: Alignment,
}

impl Column {
    /// Left-aligned column.
    pub fn left(header: impl Into<String>) -> Self {
        Self {
            header: header.into(),
            align: Alignment::Left,
        }
    }

    /// Right-aligned column (numbers).
    pub fn right(header: impl Into<String>) -> Self {
        Self {
            header: header.into(),
            align: Alignment::Right,
        }
    }
}

/// An in-memory text table.
///
/// ```
/// use dg_stats::{Table, Column};
/// let mut t = Table::new(vec![Column::left("tuner"), Column::right("time (s)")]);
/// t.push_row(vec!["DarwinGame".into(), "241.3".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("DarwinGame"));
/// assert!(rendered.contains("time (s)"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    columns: Vec<Column>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given columns.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(columns: Vec<Column>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Self {
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of columns.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row length must match column count"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header row, a separator, and aligned cells.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.header.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| pad(&c.header, widths[i], c.align))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", rule.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, cell)| pad(cell, widths[i], self.columns[i].align))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }
}

fn pad(text: &str, width: usize, align: Alignment) -> String {
    match align {
        Alignment::Left => format!("{text:<width$}"),
        Alignment::Right => format!("{text:>width$}"),
    }
}

/// Formats a sequence of `(label, value)` pairs on a single line, the compact style used
/// for one-row figure outputs (e.g. `DarwinGame=241.3s BLISS=352.0s`).
pub fn format_row(pairs: &[(&str, f64)], unit: &str) -> String {
    pairs
        .iter()
        .map(|(label, value)| format!("{label}={value:.2}{unit}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_headers_and_cells() {
        let mut t = Table::new(vec![Column::left("app"), Column::right("time")]);
        t.push_row(vec!["Redis".into(), "241.0".into()]);
        t.push_row(vec!["LAMMPS".into(), "1530.5".into()]);
        let s = t.render();
        assert!(s.contains("app"));
        assert!(s.contains("Redis"));
        assert!(s.contains("1530.5"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn right_alignment_pads_left() {
        let mut t = Table::new(vec![Column::right("n")]);
        t.push_row(vec!["7".into()]);
        t.push_row(vec!["1234".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with("   7"));
    }

    #[test]
    #[should_panic(expected = "row length must match")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec![Column::left("a"), Column::left("b")]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_columns_rejected() {
        Table::new(Vec::new());
    }

    #[test]
    fn format_row_is_compact() {
        let s = format_row(&[("Oracle", 230.0), ("DarwinGame", 241.5)], "s");
        assert_eq!(s, "Oracle=230.00s DarwinGame=241.50s");
    }

    #[test]
    fn len_tracks_rows() {
        let mut t = Table::new(vec![Column::left("x")]);
        assert!(t.is_empty());
        t.push_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
