//! Integration battery for the online retuning loop: differential properties
//! (steady environments never trigger a retune, planted shifts always do, within a
//! bounded number of samples) and the determinism contracts (record→replay and
//! 1-vs-N-worker byte-identity of whole retune sessions).

use dg_cloudsim::{InterferenceProfile, VmType};
use dg_exec::{ExecutionBackend, SimBackend};
use dg_scenario::{ScenarioBackend, ScenarioEvent, ScenarioSpec};
use dg_serve::{RetuneEvent, RetuneLoop, RetunePolicy, RetuneSpec, RetuneSweep, ServeMode};
use dg_tuners::TunerRegistry;
use dg_workloads::{Application, Workload};
use proptest::prelude::*;

const VM: VmType = VmType::M5_8xlarge;

fn policy() -> RetunePolicy {
    RetunePolicy {
        initial_budget: 8,
        retune_budget: 4,
        max_retunes: 2,
        confirm_samples: 4,
        deploy_steps: 72,
        ..RetunePolicy::default()
    }
}

fn serve_under(
    scenario: Option<ScenarioSpec>,
    env_seed: u64,
    loop_seed: u64,
) -> dg_serve::RetuneSession {
    let workload = Workload::scaled(Application::Redis, 500);
    let registry = TunerRegistry::baselines();
    let policy = policy();
    let mut exec: Box<dyn ExecutionBackend> = Box::new(SimBackend::new(
        VM,
        InterferenceProfile::typical(),
        env_seed,
    ));
    if let Some(scenario) = scenario {
        exec = Box::new(ScenarioBackend::new(exec, scenario, env_seed));
    }
    RetuneLoop::new(&workload, &registry, "RandomSearch", &policy, loop_seed)
        .serve(exec.as_mut(), ServeMode::Adaptive)
}

proptest! {
    /// Differential false-positive bound: under a steady environment (stationary
    /// interference, no scenario events) the monitor must never confirm a drift, so
    /// the loop never spends a single retune evaluation — for any seeds.
    #[test]
    fn steady_environments_never_trigger_a_retune(env_seed in 0u64..1_000, loop_seed in 0u64..1_000) {
        let session = serve_under(None, env_seed, loop_seed);
        prop_assert_eq!(session.detections, 0, "steady must never fire");
        prop_assert_eq!(session.retunes, 0);
        prop_assert_eq!(session.switches, 0);
        prop_assert_eq!(session.initial_champion, session.final_champion);
    }

    /// Differential true-positive bound: a planted 2.2x load shift after calibration
    /// is always detected, and within a bounded number of deployment samples.
    #[test]
    fn planted_load_shifts_are_detected_within_bounded_samples(env_seed in 0u64..1_000, loop_seed in 0u64..1_000) {
        // Past the default 32-sample calibration window, so the detector is armed
        // when the regime turns.
        let shift_step = 40usize;
        let mut scenario = ScenarioSpec::new("planted-shift");
        scenario.events.push(ScenarioEvent::LoadShift {
            at: shift_step as f64 * policy().spacing_seconds,
            factor: 2.2,
        });
        let session = serve_under(Some(scenario), env_seed, loop_seed);
        prop_assert!(session.detections >= 1, "the shift must be detected");
        let detected_at = session.events.iter().find_map(|e| match e {
            RetuneEvent::Detection { step, .. } => Some(*step),
            _ => None,
        }).expect("at least one detection event");
        prop_assert!(
            detected_at >= shift_step,
            "detection at step {} cannot precede the shift at step {}",
            detected_at,
            shift_step
        );
        prop_assert!(
            detected_at < shift_step + 16,
            "detection at step {} must closely follow the shift at step {}",
            detected_at,
            shift_step
        );
    }
}

fn gauntlet_spec() -> RetuneSpec {
    let mut spec = RetuneSpec::gauntlet("retune-it", 2);
    spec.space_size = 500;
    spec.policy = policy();
    spec
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let sweep = RetuneSweep::new(gauntlet_spec());
    let serial = sweep.run_with_workers(1);
    let parallel = sweep.run_with_workers(4);
    assert_eq!(serial.to_json(), parallel.to_json());
}

#[test]
fn recorded_retune_sessions_replay_byte_identically() {
    let sweep = RetuneSweep::new(gauntlet_spec());
    let (live, trace) = sweep.record_with_workers(2);
    let replayed = sweep
        .replay_with_workers(trace, 1)
        .expect("own trace replays");
    assert_eq!(live.to_json(), replayed.to_json());
}

#[test]
fn both_legs_share_the_same_regret_baseline() {
    // The adaptive and fixed legs probe the oracle at identical times with identical
    // salts on same-seeded environments; the sweep relies on that pairing when it
    // reports a single reference_time per cell. Run the two legs by hand and check.
    let workload = Workload::scaled(Application::Redis, 500);
    let registry = TunerRegistry::baselines();
    let policy = policy();
    let serve = RetuneLoop::new(&workload, &registry, "RandomSearch", &policy, 3);
    let mut a: Box<dyn ExecutionBackend> =
        Box::new(SimBackend::new(VM, InterferenceProfile::typical(), 9));
    let mut b: Box<dyn ExecutionBackend> =
        Box::new(SimBackend::new(VM, InterferenceProfile::typical(), 9));
    let adaptive = serve.serve(a.as_mut(), ServeMode::Adaptive);
    let fixed = serve.serve(
        b.as_mut(),
        ServeMode::TuneOnce {
            evaluations: adaptive.evaluations,
        },
    );
    assert_eq!(
        adaptive.reference_time.to_bits(),
        fixed.reference_time.to_bits()
    );
}

#[test]
fn steady_gauntlet_column_reports_zero_retunes() {
    let report = RetuneSweep::new(gauntlet_spec()).run_with_workers(2);
    let steady = report.scenario("steady").expect("steady column");
    assert_eq!(steady.retunes, 0, "steady cells must never retune");
    assert_eq!(steady.detections, 0, "steady cells must never detect drift");
}
