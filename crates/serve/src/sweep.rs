//! The retune sweep driver: runs a [`RetuneSpec`] grid across worker threads.
//!
//! Mirrors `dg-campaign`'s executor discipline: cells are independent (every RNG
//! stream derives from [`RetuneSpec::cell_seed`]), workers pull cells from a shared
//! atomic cursor, and results are assembled in stable grid order — so the
//! [`RetuneReport`] is byte-identical no matter how many workers ran. Each cell's two
//! legs draw their backends from a [`BackendProvider`] under distinct stream keys,
//! which is what makes whole sweeps recordable and replayable through `dg-exec`'s
//! trace machinery.

use crate::retune::{RetuneLoop, ServeMode};
use dg_campaign::{RetuneCellCoord, RetuneCellResult, RetuneReport, RetuneSpec};
use dg_exec::{
    BackendProvider, ExecutionTrace, SimProvider, TraceError, TraceRecorder, TraceReplayer,
};
use dg_scenario::ScenarioBackend;
use dg_tuners::TunerRegistry;
use dg_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A retune sweep ready to run: a validated spec plus the registry resolving its
/// tuner.
pub struct RetuneSweep {
    spec: RetuneSpec,
    registry: TunerRegistry,
}

impl std::fmt::Debug for RetuneSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetuneSweep")
            .field("spec", &self.spec.name)
            .field("grid_cells", &self.spec.grid_size())
            .finish()
    }
}

impl RetuneSweep {
    /// Creates a sweep over the `dg-tuners` baselines.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or names a tuner the baselines lack; use
    /// [`with_registry`](Self::with_registry) for custom tuners (DarwinGame variants
    /// in particular).
    pub fn new(spec: RetuneSpec) -> Self {
        Self::with_registry(spec, TunerRegistry::baselines())
    }

    /// Creates a sweep over a custom registry.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or its tuner is not in the registry.
    pub fn with_registry(spec: RetuneSpec, registry: TunerRegistry) -> Self {
        spec.validate();
        assert!(
            registry.contains(&spec.tuner),
            "tuner {:?} is not in the registry (registered: {:?})",
            spec.tuner,
            registry.names()
        );
        Self { spec, registry }
    }

    /// The sweep's spec.
    pub fn spec(&self) -> &RetuneSpec {
        &self.spec
    }

    /// Runs the sweep on one worker per available CPU.
    pub fn run(&self) -> RetuneReport {
        self.run_with_workers(dg_campaign::default_workers())
    }

    /// Runs the sweep on exactly `workers` worker threads. The report is byte-for-byte
    /// identical (in its JSON form) for every `workers` value.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn run_with_workers(&self, workers: usize) -> RetuneReport {
        self.run_with_provider(&SimProvider, workers)
    }

    /// Runs the sweep with every backend supplied by `provider` — the seam
    /// record/replay and future real-process backends plug into.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn run_with_provider(
        &self,
        provider: &dyn BackendProvider,
        workers: usize,
    ) -> RetuneReport {
        let cells = self.spec.cells();
        let completed = self.execute(provider, &cells, workers);
        RetuneReport::from_cells(&self.spec, completed)
    }

    /// Runs the sweep while recording every backend outcome, returning the report plus
    /// an [`ExecutionTrace`] that [`replay`](Self::replay) turns back into the
    /// byte-identical report with zero resimulation.
    pub fn record(&self) -> (RetuneReport, ExecutionTrace) {
        self.record_with_workers(dg_campaign::default_workers())
    }

    /// [`record`](Self::record) on exactly `workers` worker threads.
    pub fn record_with_workers(&self, workers: usize) -> (RetuneReport, ExecutionTrace) {
        let recorder = TraceRecorder::new(
            Box::new(SimProvider),
            self.spec.name.clone(),
            self.spec.fingerprint(),
        );
        let report = self.run_with_provider(&recorder, workers);
        (report, recorder.finish())
    }

    /// Replays a recorded sweep: every backend outcome is answered from `trace`
    /// instead of the simulator. The report is byte-identical to the recorded run.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the trace does not belong to this sweep: a
    /// different spec fingerprint, a different sweep name, or a missing leg stream.
    pub fn replay(
        &self,
        trace: impl Into<Arc<ExecutionTrace>>,
    ) -> Result<RetuneReport, TraceError> {
        self.replay_with_workers(trace, dg_campaign::default_workers())
    }

    /// [`replay`](Self::replay) on exactly `workers` worker threads.
    pub fn replay_with_workers(
        &self,
        trace: impl Into<Arc<ExecutionTrace>>,
        workers: usize,
    ) -> Result<RetuneReport, TraceError> {
        let trace: Arc<ExecutionTrace> = trace.into();
        let expected = self.spec.fingerprint();
        if trace.fingerprint != expected {
            return Err(TraceError::FingerprintMismatch {
                expected,
                found: trace.fingerprint,
            });
        }
        if trace.campaign != self.spec.name {
            return Err(TraceError::CampaignMismatch {
                expected: self.spec.name.clone(),
                found: trace.campaign.clone(),
            });
        }
        for cell in self.spec.cells() {
            for leg in ["adaptive", "fixed"] {
                let stream = leg_stream(&cell, leg);
                if trace.stream(&stream).is_none() {
                    return Err(TraceError::MissingStream { stream });
                }
            }
        }
        let replayer = TraceReplayer::new(trace);
        Ok(self.run_with_provider(&replayer, workers))
    }

    /// The shared worker pool: identical discipline to the campaign executor (atomic
    /// cursor, slot per cell, single-worker runs stay on the caller's thread).
    fn execute(
        &self,
        provider: &dyn BackendProvider,
        cells: &[RetuneCellCoord],
        workers: usize,
    ) -> Vec<RetuneCellResult> {
        assert!(workers > 0, "at least one worker is required");
        let scheduled = cells.len();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RetuneCellResult>>> =
            (0..scheduled).map(|_| Mutex::new(None)).collect();

        let worker_loop = || loop {
            let i = next.fetch_add(1, Ordering::SeqCst);
            if i >= scheduled {
                break;
            }
            let result = run_cell(provider, &self.spec, &self.registry, &cells[i]);
            *slots[i].lock().expect("cell slot poisoned") = Some(result);
        };

        let worker_count = workers.min(scheduled.max(1));
        if worker_count <= 1 {
            worker_loop();
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..worker_count)
                    .map(|_| scope.spawn(|_| worker_loop()))
                    .collect();
                for handle in handles {
                    handle.join().expect("retune worker panicked");
                }
            })
            .expect("retune scope failed");
        }

        slots
            .into_iter()
            .filter_map(|slot| slot.into_inner().expect("cell slot poisoned"))
            .collect()
    }
}

/// The trace-stream key of one leg of one cell, shared by recording and replaying.
fn leg_stream(cell: &RetuneCellCoord, leg: &str) -> String {
    format!("retune-{}-{leg}", cell.index)
}

/// Runs one cell: both legs over same-seeded environments, so the regret difference
/// is a paired comparison.
fn run_cell(
    provider: &dyn BackendProvider,
    spec: &RetuneSpec,
    registry: &TunerRegistry,
    cell: &RetuneCellCoord,
) -> RetuneCellResult {
    let root = spec.cell_rng(cell.index);
    let env_seed = root.derive("env").derive_index(cell.seed).seed();
    let loop_seed = root.derive("loop").derive_index(cell.seed).seed();

    let workload = Workload::scaled(spec.application, spec.space_size);
    // The scenario may override the environment's interference profile; the provider
    // sees the effective profile (trace stream headers record and validate it).
    let profile = cell.scenario.profile.as_ref().unwrap_or(&spec.profile);
    let leg_backend = |leg: &str| {
        let mut exec = provider.backend(&leg_stream(cell, leg), spec.vm, profile, env_seed);
        if !cell.scenario.is_passthrough() {
            // The scenario wraps *outside* the provider's backend, exactly like the
            // campaign executor: recording captures raw inner outcomes and replay
            // re-applies the same deterministic timeline.
            exec = Box::new(ScenarioBackend::new(exec, cell.scenario.clone(), env_seed));
        }
        exec
    };

    let serve = RetuneLoop::new(&workload, registry, &spec.tuner, &spec.policy, loop_seed);
    let mut adaptive_exec = leg_backend("adaptive");
    let adaptive = serve.serve(adaptive_exec.as_mut(), ServeMode::Adaptive);
    // Exact budget parity: the fixed leg spends up front precisely the evaluations
    // the adaptive leg ended up spending, so the comparison isolates *when* the
    // budget is spent. A cell whose monitor never fired runs the identical tuning
    // session on both legs and scores a regret tie.
    let mut fixed_exec = leg_backend("fixed");
    let fixed = serve.serve(
        fixed_exec.as_mut(),
        ServeMode::TuneOnce {
            evaluations: adaptive.evaluations,
        },
    );
    // Both legs probe the oracle at identical times with identical salts on
    // same-seeded environments, so their regret baselines are bitwise equal.
    debug_assert_eq!(
        adaptive.reference_time.to_bits(),
        fixed.reference_time.to_bits()
    );

    RetuneCellResult {
        scenario: cell.scenario.name.clone(),
        seed: cell.seed,
        adaptive_initial: adaptive.initial_champion,
        adaptive_final: adaptive.final_champion,
        fixed_champion: fixed.final_champion,
        detections: adaptive.detections,
        retunes: adaptive.retunes,
        switches: adaptive.switches,
        adaptive_time: adaptive.deployed_time,
        fixed_time: fixed.deployed_time,
        reference_time: adaptive.reference_time,
        adaptive_evals: adaptive.evaluations,
        fixed_evals: fixed.evaluations,
        core_hours: adaptive.core_hours + fixed.core_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_spec() -> RetuneSpec {
        let mut spec = RetuneSpec::new("sweep-smoke");
        spec.space_size = 500;
        spec.seeds = vec![0, 1];
        spec.policy.initial_budget = 8;
        spec.policy.retune_budget = 4;
        spec.policy.max_retunes = 2;
        spec.policy.deploy_steps = 40;
        spec.policy.drift_warmup = 16;
        spec
    }

    #[test]
    fn sweep_completes_every_cell_in_grid_order() {
        let report = RetuneSweep::new(smoke_spec()).run_with_workers(1);
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].seed, 0);
        assert_eq!(report.cells[1].seed, 1);
        assert_eq!(report.scenarios.len(), 1);
        assert_eq!(report.scenarios[0].cells, 2);
        assert!(report.cells.iter().all(|c| c.core_hours > 0.0));
        assert!(
            report
                .cells
                .iter()
                .all(|c| c.fixed_evals == c.adaptive_evals),
            "the fixed leg must spend exactly the adaptive leg's realized budget"
        );
    }

    #[test]
    #[should_panic(expected = "not in the registry")]
    fn unknown_tuner_rejected_at_construction() {
        let mut spec = smoke_spec();
        spec.tuner = "NoSuchTuner".into();
        let _ = RetuneSweep::new(spec);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = RetuneSweep::new(smoke_spec()).run_with_workers(0);
    }

    #[test]
    fn replay_rejects_foreign_traces() {
        let sweep = RetuneSweep::new(smoke_spec());
        let mut other = smoke_spec();
        other.base_seed ^= 1;
        let (_, trace) = RetuneSweep::new(other).record_with_workers(1);
        assert!(matches!(
            sweep.replay_with_workers(trace, 1),
            Err(TraceError::FingerprintMismatch { .. })
        ));
    }
}
