//! The online retuning loop: deploy a champion, watch it, re-tournament on drift.
//!
//! [`RetuneLoop::serve`] implements the serving protocol the retune sweeps measure:
//!
//! 1. **Initial tune** — a tuning session on a forked sub-environment picks the first
//!    champion (the fixed leg spends its whole budget here and stops; the sweep hands
//!    it exactly the evaluations the adaptive leg ended up spending, so the two legs
//!    differ only in *when* the budget is spent).
//! 2. **Deployment** — the champion is observed at a fixed cadence over the serving
//!    horizon via cost-free probes; every observation feeds the [`ChampionMonitor`],
//!    and the oracle configuration is probed at the same instants (same measurement
//!    noise) as the regret baseline.
//! 3. **Retune** — when the monitor confirms a regime change, a *mini-tournament*
//!    runs on a fork whose clock is advanced to the detection time, warm-started
//!    with the incumbent and a bounded hall of fame of former champions.
//! 4. **Acceptance gate** — the mini-tournament's candidate replaces the incumbent
//!    only if paired cost-free probes (identical times and noise draws for both
//!    configurations) show it faster by at least the configured margin. The gate is a
//!    ratchet: tuning-time flukes cannot make the deployment worse, because the
//!    comparison is load-controlled in a way single-leg tuning observations are not.
//!
//! After every retune the monitor resets, so the (possibly new) champion's behaviour
//! under the *current* regime becomes the new reference.

use crate::monitor::{ChampionMonitor, MonitorConfig};
use dg_campaign::RetunePolicy;
use dg_cloudsim::{mix, SimTime};
use dg_exec::ExecutionBackend;
use dg_obs::{emit_with, ObsEvent};
use dg_stats::{DriftConfig, DriftDirection};
use dg_tuners::{TunerRegistry, TuningBudget};
use dg_workloads::{ConfigId, Workload};

/// Which leg of the retune comparison to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// The full loop: initial tune, monitoring, and live re-tournaments.
    Adaptive,
    /// The paper's protocol: one tuning session spending `evaluations` up front, then
    /// the champion is never touched again. Pass the adaptive leg's realized
    /// [`RetuneSession::evaluations`] for an exact same-total-budget comparison — the
    /// only difference left is then *when* the budget is spent, not how much.
    TuneOnce {
        /// Total evaluation budget of the single up-front tuning session.
        evaluations: usize,
    },
}

/// One deployment observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Step ordinal.
    pub step: usize,
    /// Simulated start time of the observation, seconds.
    pub at: f64,
    /// Observed execution time of the deployed champion, seconds.
    pub observed: f64,
    /// Observed execution time of the oracle configuration at the same instant,
    /// seconds.
    pub reference: f64,
    /// The champion deployed at this step.
    pub champion: ConfigId,
}

/// Something the loop did beyond plain observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetuneEvent {
    /// The monitor confirmed a regime change.
    Detection {
        /// Step at which the detection fired.
        step: usize,
        /// Simulated time of the detection, seconds.
        at: f64,
        /// Direction of the confirmed drift.
        direction: DriftDirection,
    },
    /// A mini-tournament ran.
    Retune {
        /// Step at which the tournament ran.
        step: usize,
        /// The configuration the paired-probe selection favoured.
        candidate: ConfigId,
        /// Whether the gate accepted the candidate over the incumbent.
        accepted: bool,
    },
    /// A cost-free reselection among the incumbent and the hall of fame ran instead
    /// of (or before) spending tournament budget.
    Reselect {
        /// Step at which the reselection ran.
        step: usize,
        /// The configuration the paired probes favoured.
        candidate: ConfigId,
        /// Whether the candidate replaced the incumbent.
        accepted: bool,
    },
}

/// The complete record of one serving session.
#[derive(Debug, Clone, PartialEq)]
pub struct RetuneSession {
    /// Champion selected by the initial tuning session.
    pub initial_champion: ConfigId,
    /// Champion deployed when the horizon ended.
    pub final_champion: ConfigId,
    /// Every deployment observation, in order.
    pub steps: Vec<StepRecord>,
    /// Detections and retunes, in order.
    pub events: Vec<RetuneEvent>,
    /// Regime changes the monitor confirmed.
    pub detections: usize,
    /// Mini-tournaments actually run.
    pub retunes: usize,
    /// Candidate champions accepted by the paired-probe gate.
    pub switches: usize,
    /// Total observed execution time of the deployed champions, seconds.
    pub deployed_time: f64,
    /// Total observed execution time of the oracle configuration over the same
    /// schedule, seconds.
    pub reference_time: f64,
    /// Configuration evaluations spent (initial session plus mini-tournaments;
    /// cost-free probes are not evaluations).
    pub evaluations: usize,
    /// Core-hours consumed by tuning.
    pub core_hours: f64,
}

impl RetuneSession {
    /// Cumulative regret: deployed time minus the oracle baseline, seconds.
    pub fn regret(&self) -> f64 {
        self.deployed_time - self.reference_time
    }
}

/// Builds the monitor configuration a [`RetunePolicy`] describes.
pub fn monitor_config(policy: &RetunePolicy) -> MonitorConfig {
    MonitorConfig {
        alpha: policy.monitor_alpha,
        min_hits: u64::from(policy.monitor_min_hits),
        transient_sigma: policy.transient_sigma,
        drift: DriftConfig {
            warmup: policy.drift_warmup,
            delta: policy.drift_delta,
            lambda: policy.drift_lambda,
            min_rel_std: policy.drift_min_rel_std,
            ..DriftConfig::default()
        },
    }
}

/// The online retuning loop for one workload on one execution backend.
pub struct RetuneLoop<'a> {
    workload: &'a Workload,
    registry: &'a TunerRegistry,
    tuner: &'a str,
    policy: &'a RetunePolicy,
    seed: u64,
}

impl<'a> RetuneLoop<'a> {
    /// Creates a loop. `seed` keys every sub-stream the loop derives (tuner seeds,
    /// fork seeds), so two loops with the same seed on same-seeded backends are
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics when the policy is invalid or `tuner` is not in the registry.
    pub fn new(
        workload: &'a Workload,
        registry: &'a TunerRegistry,
        tuner: &'a str,
        policy: &'a RetunePolicy,
        seed: u64,
    ) -> Self {
        policy.validate();
        assert!(
            registry.contains(tuner),
            "tuner {tuner:?} is not registered"
        );
        Self {
            workload,
            registry,
            tuner,
            policy,
            seed,
        }
    }

    /// Runs one serving session over `exec`'s environment and returns its record.
    ///
    /// The deployment probes are cost-free and never advance `exec`'s clock; all
    /// tuning happens on forks, so `exec` is left positioned where it started.
    pub fn serve(&self, exec: &mut dyn ExecutionBackend, mode: ServeMode) -> RetuneSession {
        let policy = self.policy;
        let (initial_budget, allowed_retunes) = match mode {
            ServeMode::Adaptive => (policy.initial_budget, policy.max_retunes),
            ServeMode::TuneOnce { evaluations } => (evaluations, 0),
        };
        let reference = self.workload.oracle_index(1_024);
        let vm = exec.vm();

        // Initial tuning session on a fork: deployment time stays untouched.
        let mut arena = exec.fork(mix(self.seed, 1));
        let mut tuner = self
            .registry
            .build(self.tuner, mix(self.seed, 2), vm)
            .expect("tuner checked at construction");
        let outcome = tuner.tune(
            self.workload,
            arena.as_mut(),
            TuningBudget::evaluations(initial_budget),
        );
        let mut champion = outcome.chosen;
        let initial_champion = champion;
        let mut evaluations = outcome.samples;
        let mut core_hours = outcome.core_hours;
        drop(arena);

        let mut monitor = ChampionMonitor::new(monitor_config(policy));
        let mut hall_of_fame: Vec<ConfigId> = Vec::new();
        let mut steps = Vec::with_capacity(policy.deploy_steps);
        let mut events = Vec::new();
        let (mut detections, mut retunes, mut switches) = (0usize, 0usize, 0usize);
        let (mut deployed_time, mut reference_time) = (0.0f64, 0.0f64);

        for step in 0..policy.deploy_steps {
            let at = step as f64 * policy.spacing_seconds;
            let start = SimTime::from_seconds(at);
            // Same start and salt for both probes: the measurement-noise draws are
            // identical, so the regret increment isolates the configuration gap.
            let observed = exec.observe_single_at(self.workload.spec(champion), start, step as u64);
            let oracle = exec.observe_single_at(self.workload.spec(reference), start, step as u64);
            deployed_time += observed;
            reference_time += oracle;
            steps.push(StepRecord {
                step,
                at,
                observed,
                reference: oracle,
                champion,
            });

            let Some(direction) = monitor.push(observed) else {
                continue;
            };
            detections += 1;
            emit_with(|| ObsEvent::RetuneDetection {
                step,
                at,
                direction: match direction {
                    DriftDirection::Up => "up".into(),
                    DriftDirection::Down => "down".into(),
                },
            });
            events.push(RetuneEvent::Detection {
                step,
                at,
                direction,
            });

            // First, a cost-free reselection: former champions in the hall of fame
            // may already fit the new regime (a cyclic load turning back). Paired
            // probes spend no evaluation budget, so trying them never hurts parity.
            let freebies: Vec<ConfigId> = hall_of_fame
                .iter()
                .copied()
                .filter(|h| *h != champion)
                .collect();
            if !freebies.is_empty() {
                if let Some(candidate) = self.paired_winner(exec, &freebies, champion, at) {
                    emit_with(|| ObsEvent::Retune {
                        step,
                        kind: "reselect".into(),
                        accepted: true,
                    });
                    events.push(RetuneEvent::Reselect {
                        step,
                        candidate,
                        accepted: true,
                    });
                    switches += 1;
                    hall_of_fame.retain(|h| *h != champion);
                    hall_of_fame.insert(0, champion);
                    hall_of_fame.truncate(policy.hall_of_fame);
                    champion = candidate;
                    monitor.reset();
                    continue;
                }
            }
            if retunes >= allowed_retunes {
                monitor.reset();
                continue;
            }
            retunes += 1;

            // Mini-tournament at the detection time: the fork's clock is advanced so
            // the tournament evaluates configurations under the *current* regime.
            let mut arena = exec.fork(mix(self.seed, 1_000 + retunes as u64));
            arena.set_clock(start);
            let mut hints = vec![champion];
            hints.extend(hall_of_fame.iter().copied().filter(|h| *h != champion));
            let mut tuner = self
                .registry
                .build_warm(
                    self.tuner,
                    mix(self.seed, 2_000 + retunes as u64),
                    vm,
                    &hints,
                )
                .expect("tuner checked at construction");
            let outcome = tuner.tune(
                self.workload,
                arena.as_mut(),
                TuningBudget::evaluations(policy.retune_budget),
            );
            evaluations += outcome.samples;
            core_hours += outcome.core_hours;

            // The tournament's single noisy believed-best is not trusted directly:
            // its top evaluated configurations all face the paired wide-window gate,
            // and whichever wins there (if any) replaces the incumbent.
            let candidates = top_candidates(&outcome, champion, TOURNAMENT_TOP_K);
            let winner = self.paired_winner(exec, &candidates, champion, at);
            emit_with(|| ObsEvent::Retune {
                step,
                kind: "retune".into(),
                accepted: winner.is_some(),
            });
            events.push(RetuneEvent::Retune {
                step,
                candidate: winner.unwrap_or(outcome.chosen),
                accepted: winner.is_some(),
            });
            if let Some(candidate) = winner {
                switches += 1;
                hall_of_fame.retain(|h| *h != champion);
                hall_of_fame.insert(0, champion);
                hall_of_fame.truncate(policy.hall_of_fame);
                champion = candidate;
            }
            // Whatever was decided, the current regime becomes the new reference.
            monitor.reset();
        }

        RetuneSession {
            initial_champion,
            final_champion: champion,
            steps,
            events,
            detections,
            retunes,
            switches,
            deployed_time,
            reference_time,
            evaluations,
            core_hours,
        }
    }

    /// The paired acceptance gate: probes every candidate and the incumbent at the
    /// same upcoming instants with the same salts (identical noise draws), and
    /// returns the best candidate — only if it beats the incumbent by the configured
    /// margin. Probes are cost-free, so the gate spends no evaluation budget.
    ///
    /// Probes spread across `confirm_samples * confirm_stride_steps` steps of future
    /// schedule: the window spans whatever mix of regimes the coming hours hold (a
    /// storm tail plus the quiet after it, the turn of a diurnal cycle), so a
    /// candidate must win across that mix — not just at the instant the detector
    /// fired.
    fn paired_winner(
        &self,
        exec: &mut dyn ExecutionBackend,
        candidates: &[ConfigId],
        incumbent: ConfigId,
        at: f64,
    ) -> Option<ConfigId> {
        let policy = self.policy;
        let stride = policy.spacing_seconds * policy.confirm_stride_steps as f64;
        let total = |exec: &mut dyn ExecutionBackend, config: ConfigId| -> f64 {
            (0..policy.confirm_samples)
                .map(|probe| {
                    let t = SimTime::from_seconds(at + stride * (probe + 1) as f64);
                    exec.observe_single_at(self.workload.spec(config), t, probe as u64)
                })
                .sum()
        };
        let incumbent_total = total(exec, incumbent);
        let best = candidates
            .iter()
            .map(|&c| (c, total(exec, c)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))?;
        (best.1 < incumbent_total * (1.0 - policy.accept_margin)).then_some(best.0)
    }
}

/// Upper bound on tournament candidates offered to the paired gate.
const TOURNAMENT_TOP_K: usize = 3;

/// The tournament's strongest distinct configurations by observed time (the believed
/// best first), excluding the incumbent.
fn top_candidates(
    outcome: &dg_tuners::TuningOutcome,
    incumbent: ConfigId,
    k: usize,
) -> Vec<ConfigId> {
    let mut ranked: Vec<(ConfigId, f64)> = Vec::new();
    for record in &outcome.history {
        if record.config == incumbent {
            continue;
        }
        match ranked.iter_mut().find(|(c, _)| *c == record.config) {
            Some(entry) => entry.1 = entry.1.min(record.observed_time),
            None => ranked.push((record.config, record.observed_time)),
        }
    }
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut out: Vec<ConfigId> = Vec::with_capacity(k);
    if outcome.chosen != incumbent {
        out.push(outcome.chosen);
    }
    for (config, _) in ranked {
        if out.len() >= k {
            break;
        }
        if !out.contains(&config) {
            out.push(config);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_campaign::standard_registry;
    use dg_cloudsim::{InterferenceProfile, VmType};
    use dg_exec::SimBackend;
    use dg_scenario::{ScenarioBackend, ScenarioEvent, ScenarioSpec};
    use dg_workloads::Application;

    const VM: VmType = VmType::M5_8xlarge;

    fn smoke_policy() -> RetunePolicy {
        RetunePolicy {
            initial_budget: 10,
            retune_budget: 6,
            max_retunes: 2,
            confirm_samples: 4,
            deploy_steps: 56,
            spacing_seconds: 240.0,
            drift_warmup: 16,
            ..RetunePolicy::default()
        }
    }

    fn backend(seed: u64) -> Box<dyn ExecutionBackend> {
        Box::new(SimBackend::new(VM, InterferenceProfile::typical(), seed))
    }

    #[test]
    fn serve_is_deterministic_and_leaves_the_backend_clock_alone() {
        let workload = Workload::scaled(Application::Redis, 2_000);
        let registry = standard_registry(&dg_campaign::ExperimentScale::smoke());
        let policy = smoke_policy();
        let run = || {
            let mut exec = backend(7);
            let before = exec.clock();
            let session = RetuneLoop::new(&workload, &registry, "RandomSearch", &policy, 11)
                .serve(exec.as_mut(), ServeMode::Adaptive);
            assert_eq!(
                exec.clock(),
                before,
                "probes and forks must not move the clock"
            );
            session
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.steps.len(), policy.deploy_steps);
        assert!(a.evaluations >= policy.initial_budget);
        assert!(a.deployed_time > 0.0 && a.reference_time > 0.0);
    }

    #[test]
    fn tune_once_spends_exactly_the_requested_budget_and_never_retunes() {
        let workload = Workload::scaled(Application::Redis, 2_000);
        let registry = standard_registry(&dg_campaign::ExperimentScale::smoke());
        let policy = smoke_policy();
        let mut exec = backend(3);
        let session = RetuneLoop::new(&workload, &registry, "RandomSearch", &policy, 5)
            .serve(exec.as_mut(), ServeMode::TuneOnce { evaluations: 22 });
        assert_eq!(session.retunes, 0);
        assert_eq!(session.switches, 0);
        assert_eq!(session.initial_champion, session.final_champion);
        assert_eq!(session.evaluations, 22);
    }

    #[test]
    fn a_planted_load_shift_is_detected_and_retuned() {
        let workload = Workload::scaled(Application::Redis, 2_000);
        let registry = standard_registry(&dg_campaign::ExperimentScale::smoke());
        let policy = smoke_policy();
        // A 2.2x load shift lands mid-horizon, after calibration completes.
        let shift_at = 28.0 * policy.spacing_seconds;
        let mut spec = ScenarioSpec::new("planted-shift");
        spec.events.push(ScenarioEvent::LoadShift {
            at: shift_at,
            factor: 2.2,
        });
        let mut exec: Box<dyn ExecutionBackend> =
            Box::new(ScenarioBackend::new(backend(9), spec, 9));
        let session = RetuneLoop::new(&workload, &registry, "RandomSearch", &policy, 21)
            .serve(exec.as_mut(), ServeMode::Adaptive);
        assert!(session.detections >= 1, "the shift must be detected");
        assert!(session.retunes >= 1, "a detection must trigger a retune");
        let detection_step = session
            .events
            .iter()
            .find_map(|e| match e {
                RetuneEvent::Detection { step, .. } => Some(*step),
                _ => None,
            })
            .expect("at least one detection");
        assert!(
            (28..48).contains(&detection_step),
            "detection at step {detection_step} should closely follow the shift at step 28"
        );
    }
}
