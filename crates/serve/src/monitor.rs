//! The champion monitor: recency-weighted tracking plus change-point detection over a
//! deployed configuration's observed execution times.
//!
//! A [`ChampionMonitor`] combines three defences against the three ways a noisy
//! deployment stream can mislead a retuning loop:
//!
//! * an [`Ewma`] tracks the *current belief* about the champion's performance with
//!   recency weighting; its hit counter is the **confidence gate** — no drift is
//!   reported until enough samples have been absorbed — and its mean is the **level
//!   gate**: a detector firing is only reported while the belief itself sits outside
//!   the calibrated reference band;
//! * a **transient filter** holds any sample deviating wildly from the calibrated
//!   reference back for one step: a lone spike (preemption retry, cache cold start) is
//!   dropped, while two consecutive deviations to the same side feed through as the
//!   start of a genuine level change;
//! * a [`DriftDetector`] (two-sided CUSUM over the filtered stream) decides when the
//!   accumulated evidence amounts to a *regime change* rather than noise.

use dg_stats::{DriftConfig, DriftDetector, DriftDirection, Ewma};

/// Tuning knobs for a [`ChampionMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Recency weight of the EWMA belief tracker, in `(0, 1]`.
    pub alpha: f64,
    /// Minimum EWMA hits before a detector firing is reported (confidence gate).
    pub min_hits: u64,
    /// Samples deviating more than this many reference standard deviations are
    /// treated as potential transients and held back one step.
    pub transient_sigma: f64,
    /// Configuration of the underlying CUSUM detector.
    pub drift: DriftConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            alpha: 0.2,
            min_hits: 8,
            transient_sigma: 4.0,
            drift: DriftConfig::default(),
        }
    }
}

impl MonitorConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]`, `transient_sigma` is not strictly
    /// positive, or the drift configuration is invalid.
    pub fn validate(&self) {
        assert!(
            self.alpha.is_finite() && self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        assert!(
            self.transient_sigma.is_finite() && self.transient_sigma > 0.0,
            "transient_sigma must be > 0"
        );
        self.drift.validate();
    }
}

/// Watches one deployed champion's observation stream and reports confirmed regime
/// changes.
///
/// ```
/// use dg_serve::{ChampionMonitor, MonitorConfig};
/// use dg_stats::{DriftConfig, DriftDirection};
///
/// let mut monitor = ChampionMonitor::new(MonitorConfig {
///     drift: DriftConfig { warmup: 8, ..DriftConfig::default() },
///     ..MonitorConfig::default()
/// });
/// for i in 0..8 {
///     assert_eq!(monitor.push(100.0 + (i % 2) as f64), None);
/// }
/// // One wild spike is filtered as a transient...
/// assert_eq!(monitor.push(400.0), None);
/// assert_eq!(monitor.push(101.0), None);
/// // ...but a sustained slowdown is confirmed.
/// let fired = (0..20).find_map(|_| monitor.push(170.0));
/// assert_eq!(fired, Some(DriftDirection::Up));
/// ```
#[derive(Debug, Clone)]
pub struct ChampionMonitor {
    config: MonitorConfig,
    ewma: Ewma,
    detector: DriftDetector,
    /// A deviant sample held back one step by the transient filter.
    pending: Option<f64>,
    transients: u64,
    samples: u64,
}

impl ChampionMonitor {
    /// Creates a monitor.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see [`MonitorConfig::validate`]).
    pub fn new(config: MonitorConfig) -> Self {
        config.validate();
        Self {
            config,
            ewma: Ewma::new(config.alpha),
            detector: DriftDetector::new(config.drift),
            pending: None,
            transients: 0,
            samples: 0,
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The recency-weighted belief about the monitored stream.
    pub fn belief(&self) -> &Ewma {
        &self.ewma
    }

    /// The underlying change-point detector.
    pub fn detector(&self) -> &DriftDetector {
        &self.detector
    }

    /// Samples dropped (or currently held) by the transient filter.
    pub fn transients(&self) -> u64 {
        self.transients
    }

    /// Non-NaN samples offered to the monitor.
    pub fn samples_seen(&self) -> u64 {
        self.samples
    }

    /// Feeds one observation; returns the drift direction the first time a regime
    /// change is confirmed *and* the confidence gate is open. NaN samples are ignored.
    pub fn push(&mut self, value: f64) -> Option<DriftDirection> {
        if value.is_nan() {
            return None;
        }
        self.samples += 1;
        if !self.detector.calibrated() {
            // During calibration every sample is reference material; the detector
            // cannot fire yet, so the filter has nothing to protect.
            self.ewma.push(value);
            let fired = self.detector.push(value);
            return self.gate(fired);
        }
        let (mean, std) = self.reference_band();
        let deviant = (value - mean).abs() > self.config.transient_sigma * std;
        match self.pending.take() {
            Some(held) if deviant && (held > mean) == (value > mean) => {
                // Two consecutive deviations to the same side: a level change, not a
                // transient. Release the held sample first to keep stream order.
                self.ewma.push(held);
                let first = self.detector.push(held);
                self.ewma.push(value);
                let second = self.detector.push(value);
                self.gate(second.or(first))
            }
            held => {
                // Any held sample not confirmed by a same-side deviation was a lone
                // transient: drop it.
                if held.is_some() {
                    self.transients += 1;
                }
                if deviant {
                    self.pending = Some(value);
                    return None;
                }
                self.ewma.push(value);
                let fired = self.detector.push(value);
                self.gate(fired)
            }
        }
    }

    /// Clears all state — belief, detector, and filter — so the *current* regime
    /// becomes the new reference. Call after acting on a confirmed drift (a retune).
    pub fn reset(&mut self) {
        self.ewma.reset();
        self.detector.reset();
        self.pending = None;
        self.transients = 0;
        self.samples = 0;
    }

    /// The frozen reference band the transient filter compares against, reproducing
    /// the detector's calibration floor.
    fn reference_band(&self) -> (f64, f64) {
        let reference = self.detector.reference();
        let mean = reference.mean();
        let std = reference
            .std_dev()
            .max(self.config.drift.min_rel_std * mean.abs())
            .max(f64::EPSILON);
        (mean, std)
    }

    fn gate(&self, fired: Option<DriftDirection>) -> Option<DriftDirection> {
        fired.filter(|_| {
            if !self.ewma.confident(self.config.min_hits) {
                return false;
            }
            // The recency-weighted belief must itself have left the reference band:
            // CUSUM evidence without a level change in the belief is the signature of
            // a slow stationary wave, not a regime change.
            let (mean, std) = self.reference_band();
            (self.ewma.mean() - mean).abs() > std
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(warmup: u32) -> MonitorConfig {
        MonitorConfig {
            drift: DriftConfig {
                warmup,
                ..DriftConfig::default()
            },
            ..MonitorConfig::default()
        }
    }

    fn calibrated(warmup: u32) -> ChampionMonitor {
        let mut monitor = ChampionMonitor::new(quick(warmup));
        for i in 0..warmup {
            assert_eq!(monitor.push(100.0 + (i % 3) as f64), None);
        }
        assert!(monitor.detector().calibrated());
        monitor
    }

    #[test]
    fn steady_wobble_never_fires() {
        let mut monitor = ChampionMonitor::new(quick(32));
        let sample = |i: u64| 100.0 + 6.0 * ((i as f64 * 0.9).sin() - (i as f64 * 0.17).cos());
        for i in 0..600 {
            assert_eq!(monitor.push(sample(i)), None, "fired at sample {i}");
        }
        assert_eq!(monitor.transients(), 0);
    }

    #[test]
    fn lone_spikes_are_filtered_as_transients() {
        let mut monitor = calibrated(16);
        for round in 0..60 {
            let value = if round % 15 == 7 { 500.0 } else { 101.0 };
            assert_eq!(monitor.push(value), None, "fired at round {round}");
        }
        assert!(monitor.transients() >= 3, "spikes must be counted");
    }

    #[test]
    fn sustained_shift_fires_despite_the_filter() {
        let mut monitor = calibrated(16);
        let fired = (0..24).find_map(|_| monitor.push(180.0));
        assert_eq!(fired, Some(dg_stats::DriftDirection::Up));
    }

    #[test]
    fn downward_shift_fires_down() {
        let mut monitor = calibrated(16);
        let fired = (0..24).find_map(|_| monitor.push(40.0));
        assert_eq!(fired, Some(dg_stats::DriftDirection::Down));
    }

    #[test]
    fn confidence_gate_holds_back_early_detections() {
        let config = MonitorConfig {
            min_hits: 1_000,
            ..quick(8)
        };
        let mut monitor = ChampionMonitor::new(config);
        for i in 0..8 {
            monitor.push(100.0 + (i % 2) as f64);
        }
        for i in 0..200 {
            assert_eq!(
                monitor.push(250.0),
                None,
                "the gate must suppress the firing at sample {i}"
            );
        }
    }

    #[test]
    fn reset_recalibrates_to_the_new_regime() {
        let mut monitor = calibrated(8);
        assert!((0..24).find_map(|_| monitor.push(200.0)).is_some());
        monitor.reset();
        assert_eq!(monitor.samples_seen(), 0);
        // The new level calibrates as the reference; staying there never fires.
        for i in 0..100 {
            assert_eq!(monitor.push(200.0 + (i % 2) as f64), None);
        }
    }

    #[test]
    fn nan_is_ignored() {
        let mut monitor = calibrated(8);
        let before = monitor.samples_seen();
        assert_eq!(monitor.push(f64::NAN), None);
        assert_eq!(monitor.samples_seen(), before);
    }

    #[test]
    #[should_panic(expected = "transient_sigma")]
    fn invalid_config_is_rejected() {
        ChampionMonitor::new(MonitorConfig {
            transient_sigma: 0.0,
            ..MonitorConfig::default()
        });
    }
}
