//! Online continuous retuning for the DarwinGame reproduction.
//!
//! The paper tunes an application once and deploys the champion; this crate asks what
//! happens *after* deployment, when the cloud keeps changing. It provides:
//!
//! * [`ChampionMonitor`] — a recency-weighted watch on a deployed champion's observed
//!   execution times: an EWMA belief with a hit-count confidence gate, a transient
//!   filter that drops lone spikes but passes sustained deviations, and `dg-stats`'
//!   CUSUM [`DriftDetector`](dg_stats::DriftDetector) deciding when the regime
//!   actually changed;
//! * [`RetuneLoop`] — the serving protocol: deploy, observe at a fixed cadence, and
//!   on confirmed drift run an incremental mini-tournament (warm-started from the
//!   incumbent and a bounded hall of fame) whose candidate must beat the incumbent in
//!   *paired* cost-free probes before it takes over;
//! * [`RetuneSweep`] — the grid driver measuring adaptive serving against the
//!   paper's tune-once protocol at evaluation parity, producing `dg-campaign`'s
//!   [`RetuneReport`] (canonical JSON, byte-identical across worker counts, and
//!   recordable/replayable through `dg-exec` traces).
//!
//! # Quick example
//!
//! ```
//! use dg_serve::{RetuneSpec, RetuneSweep};
//!
//! let mut spec = RetuneSpec::new("demo");
//! spec.space_size = 500;
//! spec.policy.initial_budget = 6;
//! spec.policy.deploy_steps = 20;
//! let report = RetuneSweep::new(spec).run_with_workers(2);
//! assert_eq!(report.cells.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod monitor;
mod retune;
mod sweep;

pub use dg_campaign::{
    RetuneCellCoord, RetuneCellResult, RetunePolicy, RetuneReport, RetuneScenarioSummary,
    RetuneSpec,
};
pub use monitor::{ChampionMonitor, MonitorConfig};
pub use retune::{monitor_config, RetuneEvent, RetuneLoop, RetuneSession, ServeMode, StepRecord};
pub use sweep::RetuneSweep;
