//! Property tests for [`IndexPartition`]: the regional phase and the hybrid
//! integration both stand on these invariants, so they are pinned across randomized
//! `(total, parts)` pairs rather than a handful of hand-picked cases.

use dg_workloads::IndexPartition;
use proptest::prelude::*;

proptest! {
    /// Parts are pairwise disjoint, contiguous, and cover `0..total` exactly.
    #[test]
    fn parts_are_disjoint_and_cover_the_space(total in 1u64..5_000, parts in 1usize..80) {
        let partition = IndexPartition::new(total, parts);
        let mut next_expected = 0u64;
        for i in 0..partition.parts() {
            let range = partition.range(i);
            prop_assert_eq!(
                range.start, next_expected,
                "part {} must start where part {} ended", i, i.wrapping_sub(1)
            );
            prop_assert!(range.start < range.end, "part {} must be non-empty", i);
            next_expected = range.end;
        }
        prop_assert_eq!(next_expected, total, "parts must cover the space exactly");
    }

    /// Part sizes differ by at most one configuration.
    #[test]
    fn part_sizes_differ_by_at_most_one(total in 1u64..100_000, parts in 1usize..200) {
        let partition = IndexPartition::new(total, parts);
        let sizes: Vec<u64> = (0..partition.parts()).map(|i| partition.part_size(i)).collect();
        let min = *sizes.iter().min().expect("at least one part");
        let max = *sizes.iter().max().expect("at least one part");
        prop_assert!(max - min <= 1, "sizes {}..{} differ by more than one", min, max);
        prop_assert_eq!(sizes.iter().sum::<u64>(), total);
    }

    /// `part_of(i)` agrees with range membership for every index.
    #[test]
    fn part_of_agrees_with_membership(total in 1u64..3_000, parts in 1usize..60) {
        let partition = IndexPartition::new(total, parts);
        for index in 0..total {
            let part = partition.part_of(index);
            prop_assert!(part < partition.parts());
            prop_assert!(
                partition.range(part).contains(&index),
                "part_of({}) = {} but that part is {:?}", index, part, partition.range(part)
            );
        }
    }

    /// The clamp keeps every part non-empty even when more parts than elements are
    /// requested.
    #[test]
    fn clamped_partitions_have_no_empty_parts(total in 1u64..50, parts in 1usize..200) {
        let partition = IndexPartition::new(total, parts);
        prop_assert!(partition.parts() as u64 <= total);
        for i in 0..partition.parts() {
            prop_assert!(partition.part_size(i) >= 1);
        }
    }
}
