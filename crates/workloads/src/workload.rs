//! A tunable workload: application + parameter space + performance surface.

use crate::app::Application;
use crate::param::{ConfigId, ParameterSpace};
use crate::partition::IndexPartition;
use crate::progress::WorkUnit;
use crate::surface::{PerformanceSurface, SurfaceConfig, SyntheticSurface};
use dg_cloudsim::{ExecutionSpec, SimRng};

/// Everything a tuner needs to know about one application under tuning.
///
/// A `Workload` owns the parameter space (Table 1), the synthetic performance surface
/// that stands in for the real application, and the work unit used for progress
/// reporting. All tuners — the baselines and DarwinGame — evaluate configurations only
/// through [`Workload::spec`], so they compete on identical footing.
///
/// ```
/// use dg_workloads::{Application, Workload};
///
/// let workload = Workload::scaled(Application::Redis, 10_000);
/// let spec = workload.spec(0);
/// assert!(spec.base_time() >= 230.0);
/// assert!(workload.size() <= 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    app: Application,
    surface: SyntheticSurface,
    work_unit: WorkUnit,
}

impl Workload {
    /// Creates the full-scale workload for an application (Table 1 sized space).
    pub fn full(app: Application) -> Self {
        let space = app.parameter_space();
        Self::from_parts(app, space, app.surface_config(), app.surface_seed())
    }

    /// Creates a reduced-scale workload whose search space has at most `max_size`
    /// configurations. The surface statistics (time spread, sensitivity structure) are
    /// unchanged; only the space is smaller, so experiments finish quickly.
    pub fn scaled(app: Application, max_size: u64) -> Self {
        let space = app.scaled_parameter_space(max_size);
        Self::from_parts(app, space, app.surface_config(), app.surface_seed())
    }

    /// Creates a workload with explicit surface knobs and seed (used by calibration
    /// tests and ablation studies).
    pub fn custom(
        app: Application,
        space: ParameterSpace,
        config: SurfaceConfig,
        seed: u64,
    ) -> Self {
        Self::from_parts(app, space, config, seed)
    }

    fn from_parts(
        app: Application,
        space: ParameterSpace,
        config: SurfaceConfig,
        seed: u64,
    ) -> Self {
        let surface = SyntheticSurface::generate(space, config, seed);
        Self {
            app,
            surface,
            work_unit: WorkUnit::for_application(app),
        }
    }

    /// The application this workload models.
    pub fn application(&self) -> Application {
        self.app
    }

    /// The tuning search space.
    pub fn space(&self) -> &ParameterSpace {
        self.surface.space()
    }

    /// The underlying synthetic performance surface.
    pub fn surface(&self) -> &SyntheticSurface {
        &self.surface
    }

    /// The work unit in which progress is reported.
    pub fn work_unit(&self) -> WorkUnit {
        self.work_unit
    }

    /// Number of configurations in the search space.
    pub fn size(&self) -> u64 {
        self.space().size()
    }

    /// Dedicated-environment execution time of configuration `id`.
    pub fn base_time(&self, id: ConfigId) -> f64 {
        self.surface.base_time(id)
    }

    /// Interference sensitivity of configuration `id`.
    pub fn sensitivity(&self, id: ConfigId) -> f64 {
        self.surface.sensitivity(id)
    }

    /// The execution spec handed to the cloud simulator for configuration `id`.
    pub fn spec(&self, id: ConfigId) -> ExecutionSpec {
        self.surface.spec(id)
    }

    /// Partitions the search space into `n_r` regions for the regional phase.
    pub fn regions(&self, n_r: usize) -> IndexPartition {
        IndexPartition::new(self.size(), n_r)
    }

    /// Partitions the search space into `n_s` subspaces for hybrid integration with an
    /// existing tuner (Sec. 3.6).
    pub fn subspaces(&self, n_s: usize) -> IndexPartition {
        IndexPartition::new(self.size(), n_s)
    }

    /// The configuration the paper calls *optimal*: the one with the minimum execution
    /// time in a dedicated, interference-free environment.
    ///
    /// Determining it exactly would require evaluating every configuration; instead we
    /// take the best of the surface's planted optimum and a deterministic sample of
    /// `sample_budget` configurations, which is indistinguishable in practice because the
    /// planted optimum is the true minimum by construction.
    pub fn oracle_index(&self, sample_budget: usize) -> ConfigId {
        let mut best = self.surface.planted_optimum();
        let mut best_time = self.base_time(best);
        let mut rng = SimRng::new(self.surface.seed()).derive("oracle-scan");
        let size = self.size();
        for _ in 0..sample_budget {
            let id = (rng.uniform() * size as f64) as u64;
            let id = id.min(size - 1);
            let t = self.base_time(id);
            if t < best_time {
                best_time = t;
                best = id;
            }
        }
        best
    }

    /// Dedicated-environment execution time of the oracle configuration.
    pub fn oracle_time(&self, sample_budget: usize) -> f64 {
        self.base_time(self.oracle_index(sample_budget))
    }

    /// Draws `count` uniformly random configuration ids (with replacement); a convenience
    /// for motivation experiments such as Fig. 1 and Fig. 2.
    pub fn random_configs(&self, count: usize, rng: &mut SimRng) -> Vec<ConfigId> {
        let size = self.size();
        (0..count)
            .map(|_| ((rng.uniform() * size as f64) as u64).min(size - 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_workload_has_bounded_size() {
        let w = Workload::scaled(Application::Redis, 20_000);
        assert!(w.size() <= 20_000);
        assert!(w.size() > 1_000);
        assert_eq!(w.application(), Application::Redis);
    }

    #[test]
    fn full_workload_matches_paper_scale() {
        let w = Workload::full(Application::Gromacs);
        assert!(w.size() > 500_000);
        assert!(w.size() <= Application::Gromacs.paper_search_space_size());
    }

    #[test]
    fn specs_are_deterministic_across_instances() {
        let a = Workload::scaled(Application::Ffmpeg, 10_000);
        let b = Workload::scaled(Application::Ffmpeg, 10_000);
        for id in [0u64, 5, 99, 1234] {
            let id = id.min(a.size() - 1);
            assert_eq!(a.base_time(id), b.base_time(id));
            assert_eq!(a.sensitivity(id), b.sensitivity(id));
        }
    }

    #[test]
    fn oracle_is_at_least_as_good_as_random_samples() {
        let w = Workload::scaled(Application::Lammps, 10_000);
        let oracle_time = w.oracle_time(2_000);
        let mut rng = SimRng::new(77);
        for id in w.random_configs(2_000, &mut rng) {
            assert!(w.base_time(id) >= oracle_time - 1e-9);
        }
    }

    #[test]
    fn oracle_time_is_near_configured_best() {
        for app in Application::ALL {
            let w = Workload::scaled(app, 20_000);
            let oracle = w.oracle_time(1_000);
            let best = app.surface_config().best_time;
            assert!(
                oracle < best * 1.1,
                "{app}: oracle {oracle} too far above configured best {best}"
            );
        }
    }

    #[test]
    fn regions_cover_space() {
        let w = Workload::scaled(Application::Redis, 10_000);
        let regions = w.regions(100);
        assert_eq!(regions.total(), w.size());
        assert_eq!(regions.parts(), 100);
    }

    #[test]
    fn random_configs_are_in_range() {
        let w = Workload::scaled(Application::Redis, 5_000);
        let mut rng = SimRng::new(3);
        for id in w.random_configs(500, &mut rng) {
            assert!(id < w.size());
        }
    }
}
