//! A tunable workload: application + parameter space + performance surface.

use crate::app::Application;
use crate::param::{ConfigId, ParameterSpace};
use crate::partition::IndexPartition;
use crate::progress::WorkUnit;
use crate::surface::{PerformanceSurface, SurfaceConfig, SyntheticSurface};
use dg_cloudsim::{fast_path_enabled, ExecutionSpec, SimRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Largest search-space size for which a workload pre-allocates a spec memo table
/// (two `u64` slots per configuration — 16 MiB at the cap). Paper-scale spaces above
/// the cap fall back to recomputing specs on demand.
const SPEC_MEMO_MAX_CONFIGS: u64 = 1 << 20;

/// A lock-free memo of fully computed [`ExecutionSpec`]s, keyed by configuration id.
///
/// Surface evaluation (`SyntheticSurface::spec`) is a pure function of the id but costs
/// hundreds of nanoseconds — a CDF walk, several hashes, and a `powf` — and tournament
/// players re-fetch their spec for every game of every round. The memo stores the two
/// components as raw bit patterns in atomic slots: `base_time` is strictly positive, so
/// a zero bit pattern doubles as the "empty" marker. Writers publish the sensitivity
/// first and release the base-time bits last; racing writers store identical bits
/// (purity), so the memo is deterministic and bit-transparent.
#[derive(Debug)]
struct SpecMemo {
    base_bits: Box<[AtomicU64]>,
    sens_bits: Box<[AtomicU64]>,
}

impl SpecMemo {
    fn new(size: u64) -> Option<Arc<Self>> {
        if size == 0 || size > SPEC_MEMO_MAX_CONFIGS {
            return None;
        }
        let zeros = |n: usize| -> Box<[AtomicU64]> { (0..n).map(|_| AtomicU64::new(0)).collect() };
        Some(Arc::new(Self {
            base_bits: zeros(size as usize),
            sens_bits: zeros(size as usize),
        }))
    }

    fn get(&self, id: ConfigId) -> Option<ExecutionSpec> {
        let base = self.base_bits[id as usize].load(Ordering::Acquire);
        if base == 0 {
            return None;
        }
        let sens = self.sens_bits[id as usize].load(Ordering::Relaxed);
        Some(ExecutionSpec::new(
            f64::from_bits(base),
            f64::from_bits(sens),
        ))
    }

    fn put(&self, id: ConfigId, spec: ExecutionSpec) {
        self.sens_bits[id as usize].store(spec.sensitivity().to_bits(), Ordering::Relaxed);
        self.base_bits[id as usize].store(spec.base_time().to_bits(), Ordering::Release);
    }
}

/// Everything a tuner needs to know about one application under tuning.
///
/// A `Workload` owns the parameter space (Table 1), the synthetic performance surface
/// that stands in for the real application, and the work unit used for progress
/// reporting. All tuners — the baselines and DarwinGame — evaluate configurations only
/// through [`Workload::spec`], so they compete on identical footing.
///
/// ```
/// use dg_workloads::{Application, Workload};
///
/// let workload = Workload::scaled(Application::Redis, 10_000);
/// let spec = workload.spec(0);
/// assert!(spec.base_time() >= 230.0);
/// assert!(workload.size() <= 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    app: Application,
    surface: SyntheticSurface,
    work_unit: WorkUnit,
    /// Shared spec memo (present for spaces up to [`SPEC_MEMO_MAX_CONFIGS`]); clones
    /// share the same table, so campaign cells over one workload pool their lookups.
    spec_memo: Option<Arc<SpecMemo>>,
}

impl Workload {
    /// Creates the full-scale workload for an application (Table 1 sized space).
    pub fn full(app: Application) -> Self {
        let space = app.parameter_space();
        Self::from_parts(app, space, app.surface_config(), app.surface_seed())
    }

    /// Creates a reduced-scale workload whose search space has at most `max_size`
    /// configurations. The surface statistics (time spread, sensitivity structure) are
    /// unchanged; only the space is smaller, so experiments finish quickly.
    pub fn scaled(app: Application, max_size: u64) -> Self {
        let space = app.scaled_parameter_space(max_size);
        Self::from_parts(app, space, app.surface_config(), app.surface_seed())
    }

    /// [`scaled`](Self::scaled) through a process-wide cache keyed by `(app, max_size)`.
    ///
    /// A scaled workload is a pure function of its arguments, but generating the
    /// synthetic surface (empirical-CDF sampling) costs over a millisecond — a real tax
    /// when a campaign builds the identical workload for every grid cell. The cached
    /// copies share one spec memo, so repeated spec lookups pool across cells and
    /// workers. With the fast path disabled (`DG_FORCE_UNBATCHED=1`)
    /// this regenerates from scratch every time, preserving the legacy cost profile
    /// that perf comparisons measure against.
    pub fn scaled_cached(app: Application, max_size: u64) -> Self {
        if !fast_path_enabled() {
            return Self::scaled(app, max_size);
        }
        static CACHE: OnceLock<Mutex<HashMap<(Application, u64), Workload>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut cache = cache.lock().expect("workload cache poisoned");
        cache
            .entry((app, max_size))
            .or_insert_with(|| Self::scaled(app, max_size))
            .clone()
    }

    /// Creates a workload with explicit surface knobs and seed (used by calibration
    /// tests and ablation studies).
    pub fn custom(
        app: Application,
        space: ParameterSpace,
        config: SurfaceConfig,
        seed: u64,
    ) -> Self {
        Self::from_parts(app, space, config, seed)
    }

    fn from_parts(
        app: Application,
        space: ParameterSpace,
        config: SurfaceConfig,
        seed: u64,
    ) -> Self {
        let surface = SyntheticSurface::generate(space, config, seed);
        let spec_memo = SpecMemo::new(surface.space().size());
        Self {
            app,
            surface,
            work_unit: WorkUnit::for_application(app),
            spec_memo,
        }
    }

    /// The application this workload models.
    pub fn application(&self) -> Application {
        self.app
    }

    /// The tuning search space.
    pub fn space(&self) -> &ParameterSpace {
        self.surface.space()
    }

    /// The underlying synthetic performance surface.
    pub fn surface(&self) -> &SyntheticSurface {
        &self.surface
    }

    /// The work unit in which progress is reported.
    pub fn work_unit(&self) -> WorkUnit {
        self.work_unit
    }

    /// Number of configurations in the search space.
    pub fn size(&self) -> u64 {
        self.space().size()
    }

    /// Dedicated-environment execution time of configuration `id`.
    pub fn base_time(&self, id: ConfigId) -> f64 {
        self.surface.base_time(id)
    }

    /// Interference sensitivity of configuration `id`.
    pub fn sensitivity(&self, id: ConfigId) -> f64 {
        self.surface.sensitivity(id)
    }

    /// The execution spec handed to the cloud simulator for configuration `id`.
    ///
    /// On the fast path this is memoized per configuration (specs are pure functions of
    /// the id) and computed with a single normalised-time evaluation; with the fast
    /// path disabled it recomputes both components from scratch every call, exactly as
    /// the pre-memo code did. All three routes produce bit-identical specs.
    pub fn spec(&self, id: ConfigId) -> ExecutionSpec {
        if fast_path_enabled() {
            if let Some(memo) = &self.spec_memo {
                if let Some(spec) = memo.get(id) {
                    return spec;
                }
                let spec = self.surface.spec(id);
                memo.put(id, spec);
                return spec;
            }
            return self.surface.spec(id);
        }
        ExecutionSpec::new(self.surface.base_time(id), self.surface.sensitivity(id))
    }

    /// Partitions the search space into `n_r` regions for the regional phase.
    pub fn regions(&self, n_r: usize) -> IndexPartition {
        IndexPartition::new(self.size(), n_r)
    }

    /// Partitions the search space into `n_s` subspaces for hybrid integration with an
    /// existing tuner (Sec. 3.6).
    pub fn subspaces(&self, n_s: usize) -> IndexPartition {
        IndexPartition::new(self.size(), n_s)
    }

    /// The configuration the paper calls *optimal*: the one with the minimum execution
    /// time in a dedicated, interference-free environment.
    ///
    /// Determining it exactly would require evaluating every configuration; instead we
    /// take the best of the surface's planted optimum and a deterministic sample of
    /// `sample_budget` configurations, which is indistinguishable in practice because the
    /// planted optimum is the true minimum by construction.
    pub fn oracle_index(&self, sample_budget: usize) -> ConfigId {
        let mut best = self.surface.planted_optimum();
        let mut best_time = self.base_time(best);
        let mut rng = SimRng::new(self.surface.seed()).derive("oracle-scan");
        let size = self.size();
        for _ in 0..sample_budget {
            let id = (rng.uniform() * size as f64) as u64;
            let id = id.min(size - 1);
            let t = self.base_time(id);
            if t < best_time {
                best_time = t;
                best = id;
            }
        }
        best
    }

    /// Dedicated-environment execution time of the oracle configuration.
    pub fn oracle_time(&self, sample_budget: usize) -> f64 {
        self.base_time(self.oracle_index(sample_budget))
    }

    /// Draws `count` uniformly random configuration ids (with replacement); a convenience
    /// for motivation experiments such as Fig. 1 and Fig. 2.
    pub fn random_configs(&self, count: usize, rng: &mut SimRng) -> Vec<ConfigId> {
        let size = self.size();
        (0..count)
            .map(|_| ((rng.uniform() * size as f64) as u64).min(size - 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_workload_has_bounded_size() {
        let w = Workload::scaled(Application::Redis, 20_000);
        assert!(w.size() <= 20_000);
        assert!(w.size() > 1_000);
        assert_eq!(w.application(), Application::Redis);
    }

    #[test]
    fn full_workload_matches_paper_scale() {
        let w = Workload::full(Application::Gromacs);
        assert!(w.size() > 500_000);
        assert!(w.size() <= Application::Gromacs.paper_search_space_size());
    }

    #[test]
    fn specs_are_deterministic_across_instances() {
        let a = Workload::scaled(Application::Ffmpeg, 10_000);
        let b = Workload::scaled(Application::Ffmpeg, 10_000);
        for id in [0u64, 5, 99, 1234] {
            let id = id.min(a.size() - 1);
            assert_eq!(a.base_time(id), b.base_time(id));
            assert_eq!(a.sensitivity(id), b.sensitivity(id));
        }
    }

    #[test]
    fn oracle_is_at_least_as_good_as_random_samples() {
        let w = Workload::scaled(Application::Lammps, 10_000);
        let oracle_time = w.oracle_time(2_000);
        let mut rng = SimRng::new(77);
        for id in w.random_configs(2_000, &mut rng) {
            assert!(w.base_time(id) >= oracle_time - 1e-9);
        }
    }

    #[test]
    fn oracle_time_is_near_configured_best() {
        for app in Application::ALL {
            let w = Workload::scaled(app, 20_000);
            let oracle = w.oracle_time(1_000);
            let best = app.surface_config().best_time;
            assert!(
                oracle < best * 1.1,
                "{app}: oracle {oracle} too far above configured best {best}"
            );
        }
    }

    #[test]
    fn regions_cover_space() {
        let w = Workload::scaled(Application::Redis, 10_000);
        let regions = w.regions(100);
        assert_eq!(regions.total(), w.size());
        assert_eq!(regions.parts(), 100);
    }

    #[test]
    fn random_configs_are_in_range() {
        let w = Workload::scaled(Application::Redis, 5_000);
        let mut rng = SimRng::new(3);
        for id in w.random_configs(500, &mut rng) {
            assert!(id < w.size());
        }
    }
}
