//! Tunable parameters, parameter spaces, and configuration indexing.
//!
//! A *tunable parameter* can take one of a small number of discrete values ("levels").
//! The cross product of all parameters forms the *tuning search space*; one point of that
//! space is a *tuning configuration*. Following Sec. 3.3 of the paper, every point of the
//! n-dimensional space is mapped to a one-dimensional index (mixed-radix encoding), which
//! is what regions, subspaces, and the tuners operate on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One tunable parameter: a name plus its discrete levels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parameter {
    name: String,
    levels: Vec<String>,
}

impl Parameter {
    /// Creates a parameter with explicitly named levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(name: impl Into<String>, levels: Vec<String>) -> Self {
        assert!(!levels.is_empty(), "a parameter needs at least one level");
        Self {
            name: name.into(),
            levels,
        }
    }

    /// Creates a parameter with `count` generically named levels (`v0`, `v1`, …).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn with_level_count(name: impl Into<String>, count: usize) -> Self {
        assert!(count > 0, "a parameter needs at least one level");
        Self::new(name, (0..count).map(|i| format!("v{i}")).collect())
    }

    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of levels this parameter can take.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The textual label of level `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn level_name(&self, i: usize) -> &str {
        &self.levels[i]
    }

    /// Whether the parameter is pinned to a single value (it contributes no choice).
    pub fn is_pinned(&self) -> bool {
        self.levels.len() == 1
    }
}

impl fmt::Display for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} levels)", self.name, self.levels.len())
    }
}

/// A point in the search space: one chosen level index per parameter.
pub type ConfigPoint = Vec<usize>;

/// A one-dimensional configuration index into the search space.
pub type ConfigId = u64;

/// The cross product of a set of parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParameterSpace {
    parameters: Vec<Parameter>,
}

impl ParameterSpace {
    /// Creates a space from its parameters.
    ///
    /// # Panics
    ///
    /// Panics if `parameters` is empty or if the total size overflows `u64`.
    pub fn new(parameters: Vec<Parameter>) -> Self {
        assert!(
            !parameters.is_empty(),
            "a space needs at least one parameter"
        );
        let mut size: u128 = 1;
        for p in &parameters {
            size *= p.level_count() as u128;
            assert!(
                size <= u64::MAX as u128,
                "search-space size overflows u64; reduce level counts"
            );
        }
        Self { parameters }
    }

    /// The parameters, in dimension order.
    pub fn parameters(&self) -> &[Parameter] {
        &self.parameters
    }

    /// Number of dimensions (including pinned parameters).
    pub fn dimensions(&self) -> usize {
        self.parameters.len()
    }

    /// Number of dimensions with more than one level.
    pub fn free_dimensions(&self) -> usize {
        self.parameters.iter().filter(|p| !p.is_pinned()).count()
    }

    /// Total number of configurations (the search-space size of Table 1).
    pub fn size(&self) -> u64 {
        self.parameters
            .iter()
            .map(|p| p.level_count() as u64)
            .product()
    }

    /// Decodes a 1-D index into a configuration point (mixed-radix, least significant
    /// dimension first).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.size()`.
    pub fn point_of(&self, index: ConfigId) -> ConfigPoint {
        assert!(index < self.size(), "configuration index out of range");
        let mut rest = index;
        let mut point = Vec::with_capacity(self.parameters.len());
        for p in &self.parameters {
            let base = p.level_count() as u64;
            point.push((rest % base) as usize);
            rest /= base;
        }
        point
    }

    /// Encodes a configuration point into its 1-D index.
    ///
    /// # Panics
    ///
    /// Panics if the point has the wrong dimensionality or any level is out of range.
    pub fn index_of(&self, point: &[usize]) -> ConfigId {
        assert_eq!(
            point.len(),
            self.parameters.len(),
            "point dimensionality mismatch"
        );
        let mut index: u64 = 0;
        let mut stride: u64 = 1;
        for (level, param) in point.iter().zip(self.parameters.iter()) {
            assert!(
                *level < param.level_count(),
                "level {} out of range for parameter {}",
                level,
                param.name()
            );
            index += *level as u64 * stride;
            stride *= param.level_count() as u64;
        }
        index
    }

    /// Human-readable description of a configuration (parameter=value pairs), skipping
    /// pinned parameters.
    pub fn describe(&self, index: ConfigId) -> String {
        let point = self.point_of(index);
        self.parameters
            .iter()
            .zip(point.iter())
            .filter(|(p, _)| !p.is_pinned())
            .map(|(p, l)| format!("{}={}", p.name(), p.level_name(*l)))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Builds a space over the given parameter names whose size approximates
    /// `target_size`.
    ///
    /// Level counts are assigned round-robin from `level_pattern` while the running
    /// product stays below the target; remaining parameters are pinned to a single level
    /// (their default value). This mirrors how the paper's search spaces combine many
    /// parameters but report a specific total size.
    ///
    /// # Panics
    ///
    /// Panics if `names` or `level_pattern` is empty, or `target_size == 0`.
    pub fn with_target_size(names: &[&str], level_pattern: &[usize], target_size: u64) -> Self {
        assert!(!names.is_empty(), "at least one parameter name required");
        assert!(!level_pattern.is_empty(), "level pattern must not be empty");
        assert!(target_size > 0, "target size must be positive");
        let mut parameters = Vec::with_capacity(names.len());
        let mut product: u64 = 1;
        for (i, name) in names.iter().enumerate() {
            let desired = level_pattern[i % level_pattern.len()].max(1) as u64;
            // Greedily take the desired level count while we remain under the target;
            // otherwise take the largest count that keeps us at or below it.
            let count = if product * desired <= target_size {
                desired
            } else {
                (target_size / product).max(1).min(desired)
            };
            product *= count;
            parameters.push(Parameter::with_level_count(*name, count as usize));
        }
        Self::new(parameters)
    }
}

impl fmt::Display for ParameterSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} parameters, {} free, {} configurations",
            self.dimensions(),
            self.free_dimensions(),
            self.size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> ParameterSpace {
        ParameterSpace::new(vec![
            Parameter::with_level_count("a", 3),
            Parameter::with_level_count("b", 2),
            Parameter::with_level_count("c", 4),
        ])
    }

    #[test]
    fn size_is_product_of_levels() {
        assert_eq!(small_space().size(), 24);
        assert_eq!(small_space().dimensions(), 3);
    }

    #[test]
    fn index_point_round_trip() {
        let space = small_space();
        for index in 0..space.size() {
            let point = space.point_of(index);
            assert_eq!(space.index_of(&point), index);
        }
    }

    #[test]
    fn points_are_unique() {
        let space = small_space();
        let mut seen = std::collections::HashSet::new();
        for index in 0..space.size() {
            assert!(seen.insert(space.point_of(index)));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        small_space().point_of(24);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dimension_point_panics() {
        small_space().index_of(&[0, 1]);
    }

    #[test]
    fn describe_skips_pinned_parameters() {
        let space = ParameterSpace::new(vec![
            Parameter::with_level_count("free", 2),
            Parameter::with_level_count("pinned", 1),
        ]);
        let description = space.describe(1);
        assert!(description.contains("free=v1"));
        assert!(!description.contains("pinned"));
    }

    #[test]
    fn with_target_size_lands_near_target() {
        let names: Vec<&str> = (0..20).map(|_| "p").collect();
        let space = ParameterSpace::with_target_size(&names, &[4, 3, 3, 2], 1_000_000);
        let size = space.size();
        assert!(
            (250_000..=1_000_000).contains(&size),
            "size {size} too far from target"
        );
        assert_eq!(space.dimensions(), 20);
    }

    #[test]
    fn with_target_size_never_exceeds_target() {
        let names: Vec<&str> = (0..30).map(|_| "p").collect();
        for target in [100u64, 5_000, 7_800_000] {
            let space = ParameterSpace::with_target_size(&names, &[4, 2, 3], target);
            assert!(space.size() <= target);
        }
    }

    #[test]
    fn parameter_display_and_levels() {
        let p = Parameter::with_level_count("hz", 4);
        assert_eq!(p.level_count(), 4);
        assert_eq!(p.level_name(2), "v2");
        assert!(!p.is_pinned());
        assert_eq!(p.to_string(), "hz (4 levels)");
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_levels_rejected() {
        Parameter::new("x", Vec::new());
    }
}
