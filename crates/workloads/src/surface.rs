//! Synthetic performance surfaces.
//!
//! The paper measures real applications; we cannot. What the tuners actually consume,
//! however, is only the mapping *configuration → (dedicated execution time, interference
//! sensitivity)*. [`SyntheticSurface`] generates that mapping procedurally with the
//! statistical properties reported in Sec. 2 of the paper:
//!
//! * execution times spread over roughly `best..worst` with the vast majority of
//!   configurations at least 2× slower than the best (Fig. 1 left);
//! * faster configurations tend to be *more* sensitive to interference (Fig. 2);
//! * a small fraction of configurations are both fast and robust — the "blue marker"
//!   configurations a good cloud tuner should find.
//!
//! The surface is a pure function of its seed: every configuration index always maps to
//! the same execution characteristics, no matter who asks or in which order.

use crate::param::{ConfigId, ParameterSpace};
use dg_cloudsim::{ExecutionSpec, SimRng};
use serde::{Deserialize, Serialize};

/// Anything that can translate a configuration index into execution characteristics.
pub trait PerformanceSurface {
    /// The parameter space this surface is defined over.
    fn space(&self) -> &ParameterSpace;

    /// Dedicated-environment execution time (seconds) of configuration `id`.
    fn base_time(&self, id: ConfigId) -> f64;

    /// Interference sensitivity of configuration `id`.
    fn sensitivity(&self, id: ConfigId) -> f64;

    /// The execution spec handed to the cloud simulator for configuration `id`.
    fn spec(&self, id: ConfigId) -> ExecutionSpec {
        ExecutionSpec::new(self.base_time(id), self.sensitivity(id))
    }
}

/// Tuning knobs for [`SyntheticSurface`] generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfaceConfig {
    /// Execution time of the best configuration in a dedicated environment (seconds).
    pub best_time: f64,
    /// Execution time of the worst configuration in a dedicated environment (seconds).
    pub worst_time: f64,
    /// Target fraction of configurations whose execution time is below `2 * best_time`.
    pub fast_fraction: f64,
    /// Fraction of configurations belonging to the *near-optimal cluster*: well-tuned
    /// configurations whose execution time lands within roughly 15 % of the spread above
    /// the best. Real tuning spaces have such clusters (several parameter combinations
    /// achieve close-to-best behaviour); without them the optimum would be an isolated
    /// needle that no tuner — including the paper's — could approach.
    pub cluster_fraction: f64,
    /// Sensitivity assigned to the fastest configurations (before noise/robust rebates).
    pub max_sensitivity: f64,
    /// Sensitivity assigned to the slowest configurations.
    pub min_sensitivity: f64,
    /// Fraction of configurations that are "robust": their sensitivity is slashed,
    /// creating the rare fast-and-stable configurations of Fig. 2. Fast configurations
    /// (the best ~30 % of the time range) receive a higher robust probability, modelling
    /// the small population of well-tuned *and* stable configurations the paper's Fig. 2
    /// highlights in blue.
    pub robust_fraction: f64,
}

impl Default for SurfaceConfig {
    fn default() -> Self {
        Self {
            best_time: 230.0,
            worst_time: 792.0,
            fast_fraction: 0.04,
            cluster_fraction: 0.003,
            max_sensitivity: 1.1,
            min_sensitivity: 0.15,
            robust_fraction: 0.02,
        }
    }
}

impl SurfaceConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any bound is inconsistent (non-positive times, `worst <= best`,
    /// fractions outside `(0, 1)`, or inverted sensitivities).
    pub fn validate(&self) {
        assert!(self.best_time > 0.0, "best_time must be positive");
        assert!(
            self.worst_time > self.best_time,
            "worst_time must exceed best_time"
        );
        assert!(
            self.fast_fraction > 0.0 && self.fast_fraction < 1.0,
            "fast_fraction must be in (0, 1)"
        );
        assert!(
            self.cluster_fraction >= 0.0 && self.cluster_fraction < 0.5,
            "cluster_fraction must be in [0, 0.5)"
        );
        assert!(
            self.robust_fraction >= 0.0 && self.robust_fraction < 1.0,
            "robust_fraction must be in [0, 1)"
        );
        assert!(
            self.max_sensitivity >= self.min_sensitivity && self.min_sensitivity >= 0.0,
            "sensitivities must satisfy 0 <= min <= max"
        );
    }
}

/// A procedurally generated, deterministic performance surface.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticSurface {
    space: ParameterSpace,
    config: SurfaceConfig,
    seed: u64,
    /// Per-dimension weight of its penalty contribution (sums to 1 over free dims).
    weights: Vec<f64>,
    /// Per-dimension optimal level.
    optimal_levels: Vec<usize>,
    /// Per-dimension penalty table indexed by level.
    penalties: Vec<Vec<f64>>,
    /// Pairs of interacting dimensions and their weights.
    interactions: Vec<(usize, usize, f64)>,
    /// Sorted sample of raw penalty values used as an empirical CDF for shaping.
    raw_quantiles: Vec<f64>,
    /// Exponent applied to the CDF value to achieve the configured `fast_fraction`.
    shape_exponent: f64,
}

/// Number of random configurations sampled to build the empirical raw-penalty CDF.
const CDF_SAMPLES: usize = 4096;

/// Relative strength of pairwise interactions versus per-dimension penalties.
const INTERACTION_SHARE: f64 = 0.2;

impl SyntheticSurface {
    /// Generates a surface over `space` from a seed and generation knobs.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see [`SurfaceConfig::validate`]).
    pub fn generate(space: ParameterSpace, config: SurfaceConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = SimRng::new(seed).derive("surface");
        let dims = space.dimensions();

        // Per-dimension weights, optimal levels, and penalty tables.
        let mut raw_weights = Vec::with_capacity(dims);
        let mut optimal_levels = Vec::with_capacity(dims);
        let mut penalties = Vec::with_capacity(dims);
        for parameter in space.parameters() {
            let levels = parameter.level_count();
            if levels == 1 {
                raw_weights.push(0.0);
                optimal_levels.push(0);
                penalties.push(vec![0.0]);
                continue;
            }
            raw_weights.push(rng.uniform_range(0.4, 1.0));
            let optimal = rng.index(levels);
            optimal_levels.push(optimal);
            let table: Vec<f64> = (0..levels)
                .map(|level| {
                    if level == optimal {
                        0.0
                    } else {
                        let distance =
                            (level as f64 - optimal as f64).abs() / (levels - 1).max(1) as f64;
                        let noise = rng.uniform_range(0.0, 1.0);
                        (0.45 * distance + 0.55 * noise).clamp(0.05, 1.0)
                    }
                })
                .collect();
            penalties.push(table);
        }
        let weight_sum: f64 = raw_weights.iter().sum();
        let weights: Vec<f64> = if weight_sum > 0.0 {
            raw_weights.iter().map(|w| w / weight_sum).collect()
        } else {
            raw_weights
        };

        // A handful of pairwise interactions between free dimensions.
        let free_dims: Vec<usize> = (0..dims)
            .filter(|d| space.parameters()[*d].level_count() > 1)
            .collect();
        let mut interactions = Vec::new();
        if free_dims.len() >= 2 {
            let pair_count = free_dims.len().min(6);
            for _ in 0..pair_count {
                let a = free_dims[rng.index(free_dims.len())];
                let mut b = free_dims[rng.index(free_dims.len())];
                if a == b {
                    b = free_dims
                        [(free_dims.iter().position(|d| *d == a).unwrap() + 1) % free_dims.len()];
                }
                if a != b {
                    interactions.push((a, b, rng.uniform_range(0.5, 1.0)));
                }
            }
            let total: f64 = interactions.iter().map(|(_, _, w)| w).sum();
            if total > 0.0 {
                for entry in &mut interactions {
                    entry.2 /= total;
                }
            }
        }

        let mut surface = Self {
            space,
            config,
            seed,
            weights,
            optimal_levels,
            penalties,
            interactions,
            raw_quantiles: Vec::new(),
            shape_exponent: 1.0,
        };

        // Build the empirical CDF of raw penalties and derive the shaping exponent that
        // hits the requested fast_fraction.
        let mut sampler = SimRng::new(seed).derive("surface-cdf");
        let size = surface.space.size();
        let mut samples: Vec<f64> = (0..CDF_SAMPLES)
            .map(|_| {
                let id = (sampler.uniform() * size as f64) as u64;
                surface.raw_penalty(id.min(size - 1))
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("penalties are finite"));
        surface.raw_quantiles = samples;

        let threshold = (surface.config.best_time
            / (surface.config.worst_time - surface.config.best_time))
            .clamp(0.01, 0.99);
        // We want P(U^beta < threshold) == fast_fraction, with U uniform via the CDF.
        surface.shape_exponent =
            (threshold.ln() / surface.config.fast_fraction.ln()).clamp(0.05, 1.0);
        surface
    }

    /// The generation knobs this surface was built from.
    pub fn config(&self) -> &SurfaceConfig {
        &self.config
    }

    /// The seed this surface was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configuration index of the planted global optimum (every dimension at its
    /// optimal level). Its execution time equals `best_time` up to shaping error.
    pub fn planted_optimum(&self) -> ConfigId {
        self.space.index_of(&self.optimal_levels)
    }

    /// Raw (unshaped) penalty of a configuration, in `[0, 1]`.
    fn raw_penalty(&self, id: ConfigId) -> f64 {
        let point = self.space.point_of(id);
        let mut per_dimension = 0.0;
        for (d, level) in point.iter().enumerate() {
            per_dimension += self.weights[d] * self.penalties[d][*level];
        }
        let mut interaction = 0.0;
        if !self.interactions.is_empty() {
            for (a, b, weight) in &self.interactions {
                let la = point[*a];
                let lb = point[*b];
                if la == self.optimal_levels[*a] && lb == self.optimal_levels[*b] {
                    continue;
                }
                let pair_seed = dg_cloudsim::mix(self.seed, (*a as u64) << 32 | *b as u64);
                let h = dg_cloudsim::hash_unit(pair_seed, (la as u64) << 32 | lb as u64);
                interaction += weight * h;
            }
        }
        ((1.0 - INTERACTION_SHARE) * per_dimension + INTERACTION_SHARE * interaction)
            .clamp(0.0, 1.0)
    }

    /// Empirical CDF value of a raw penalty, in `[0, 1]`: the fraction of sampled
    /// penalties *strictly below* `raw`. The strict inequality matters at the bottom
    /// end: the planted optimum (raw penalty 0) must map to 0 — and therefore to
    /// exactly `best_time` — even when the quantile sample happens to contain
    /// zero-penalty configurations, otherwise the shaping exponent amplifies the tie
    /// fraction into a spurious premium on the optimum.
    fn cdf(&self, raw: f64) -> f64 {
        if self.raw_quantiles.is_empty() {
            return raw;
        }
        let position = self.raw_quantiles.partition_point(|q| *q < raw);
        position as f64 / self.raw_quantiles.len() as f64
    }

    /// Normalised execution time in `[0, 1]` (0 = best, 1 = worst).
    pub fn normalized_time(&self, id: ConfigId) -> f64 {
        let u = self.cdf(self.raw_penalty(id));
        let mut normalized = u.powf(self.shape_exponent);
        // Members of the near-optimal cluster are pulled close to (but not onto) the
        // best time: they pay a small premium over the absolute optimum, which is what
        // makes them invisible to tuners that chase the single lowest noisy observation.
        let cluster_draw = dg_cloudsim::hash_unit(dg_cloudsim::mix(self.seed, 0xc105), id);
        if cluster_draw < self.config.cluster_fraction {
            normalized = 0.04 + 0.08 * normalized;
        }
        normalized
    }

    /// Fraction of `samples` random configurations whose execution time is below
    /// `2 * best_time` — used by calibration tests and reported in EXPERIMENTS.md.
    pub fn measured_fast_fraction(&self, samples: usize, rng: &mut SimRng) -> f64 {
        let size = self.space.size();
        let threshold = 2.0 * self.config.best_time;
        let hits = (0..samples)
            .filter(|_| {
                let id = (rng.uniform() * size as f64) as u64;
                self.base_time(id.min(size - 1)) < threshold
            })
            .count();
        hits as f64 / samples as f64
    }
}

impl SyntheticSurface {
    /// Execution time at a given normalised position (the shared tail of
    /// [`PerformanceSurface::base_time`]).
    fn time_from_normalized(&self, normalized: f64) -> f64 {
        self.config.best_time + (self.config.worst_time - self.config.best_time) * normalized
    }

    /// Sensitivity at a given normalised position (the shared tail of
    /// [`PerformanceSurface::sensitivity`]).
    fn sensitivity_from_normalized(&self, id: ConfigId, normalized: f64) -> f64 {
        let base = self.config.max_sensitivity
            - (self.config.max_sensitivity - self.config.min_sensitivity) * normalized;
        // Multiplicative noise decorrelates sensitivity from pure speed.
        let noise = 0.7 + 0.6 * dg_cloudsim::hash_unit(dg_cloudsim::mix(self.seed, 0x5e75), id);
        let mut sensitivity = base * noise;
        // A small fraction of configurations are intrinsically robust; the fast part of
        // the range is given a higher robust probability (the Fig. 2 "blue" population),
        // because that is the population a cloud-aware tuner is supposed to find.
        let robust_draw = dg_cloudsim::hash_unit(dg_cloudsim::mix(self.seed, 0x40b5), id);
        // The very fastest configurations are never robust: a maximally optimised
        // configuration pushes the system against its resource limits (Sec. 2 of the
        // paper), so robustness only appears at a small premium above the optimum.
        let robust_probability = if normalized < 0.035 {
            0.0
        } else if normalized < 0.3 {
            self.config.robust_fraction * 5.0
        } else {
            self.config.robust_fraction
        };
        if robust_draw < robust_probability {
            sensitivity *= 0.03;
        }
        sensitivity.clamp(0.015, 1.4)
    }
}

impl PerformanceSurface for SyntheticSurface {
    fn space(&self) -> &ParameterSpace {
        &self.space
    }

    fn base_time(&self, id: ConfigId) -> f64 {
        self.time_from_normalized(self.normalized_time(id))
    }

    fn sensitivity(&self, id: ConfigId) -> f64 {
        self.sensitivity_from_normalized(id, self.normalized_time(id))
    }

    fn spec(&self, id: ConfigId) -> ExecutionSpec {
        // `normalized_time` (a CDF lookup plus `powf`) dominates the cost of a spec
        // lookup and is shared by both components; evaluate it once. Same pure value
        // either way, so the spec is bit-identical to the default two-pass method.
        let normalized = self.normalized_time(id);
        ExecutionSpec::new(
            self.time_from_normalized(normalized),
            self.sensitivity_from_normalized(id, normalized),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;

    fn test_space() -> ParameterSpace {
        ParameterSpace::new(
            (0..12)
                .map(|i| Parameter::with_level_count(format!("p{i}"), 3 + i % 3))
                .collect(),
        )
    }

    fn test_surface(seed: u64) -> SyntheticSurface {
        SyntheticSurface::generate(test_space(), SurfaceConfig::default(), seed)
    }

    #[test]
    fn times_stay_within_configured_bounds() {
        let surface = test_surface(1);
        let mut rng = SimRng::new(2);
        let size = surface.space().size();
        for _ in 0..2000 {
            let id = (rng.uniform() * size as f64) as u64;
            let t = surface.base_time(id);
            assert!(t >= surface.config().best_time - 1e-9);
            assert!(t <= surface.config().worst_time + 1e-9);
        }
    }

    #[test]
    fn surface_is_deterministic() {
        let a = test_surface(7);
        let b = test_surface(7);
        for id in [0u64, 17, 999, 12_345] {
            assert_eq!(a.base_time(id), b.base_time(id));
            assert_eq!(a.sensitivity(id), b.sensitivity(id));
        }
    }

    #[test]
    fn different_seeds_give_different_surfaces() {
        let a = test_surface(1);
        let b = test_surface(2);
        let differs = (0..100u64).any(|id| (a.base_time(id) - b.base_time(id)).abs() > 1e-9);
        assert!(differs);
    }

    #[test]
    fn planted_optimum_is_fast() {
        let surface = test_surface(3);
        let optimum = surface.planted_optimum();
        let t = surface.base_time(optimum);
        assert!(
            t < surface.config().best_time * 1.05,
            "planted optimum should be near best_time, got {t}"
        );
        // And it should beat a large random sample.
        let mut rng = SimRng::new(9);
        let size = surface.space().size();
        for _ in 0..2000 {
            let id = (rng.uniform() * size as f64) as u64;
            assert!(surface.base_time(id) >= t - 1e-9);
        }
    }

    #[test]
    fn most_configurations_are_at_least_twice_the_best() {
        // Fig. 1 (left): more than 93 % of configurations take at least 2x the best time.
        let surface = test_surface(4);
        let mut rng = SimRng::new(11);
        let fast = surface.measured_fast_fraction(4000, &mut rng);
        assert!(
            fast < 0.12,
            "too many fast configurations for a paper-shaped surface: {fast}"
        );
        assert!(fast > 0.0, "some fast configurations must exist");
    }

    #[test]
    fn faster_configurations_are_more_sensitive_on_average() {
        let surface = test_surface(5);
        let mut rng = SimRng::new(12);
        let size = surface.space().size();
        let mut fast_sens = Vec::new();
        let mut slow_sens = Vec::new();
        for _ in 0..6000 {
            let id = (rng.uniform() * size as f64) as u64;
            let normalized = surface.normalized_time(id);
            if normalized < 0.3 {
                fast_sens.push(surface.sensitivity(id));
            } else if normalized > 0.7 {
                slow_sens.push(surface.sensitivity(id));
            }
        }
        assert!(!fast_sens.is_empty() && !slow_sens.is_empty());
        assert!(
            dg_stats::mean(&fast_sens) > dg_stats::mean(&slow_sens),
            "fast configs should be more interference-sensitive on average"
        );
    }

    #[test]
    fn robust_fast_configurations_exist_but_are_rare() {
        let surface = test_surface(6);
        let mut rng = SimRng::new(13);
        let size = surface.space().size();
        let mut robust_fast = 0usize;
        let samples = 20_000usize;
        for _ in 0..samples {
            let id = (rng.uniform() * size as f64) as u64;
            let fast = surface.base_time(id) < surface.config().best_time * 1.6;
            let robust = surface.sensitivity(id) < 0.2;
            if fast && robust {
                robust_fast += 1;
            }
        }
        let fraction = robust_fast as f64 / samples as f64;
        assert!(fraction > 0.0, "sweet-spot configurations must exist");
        assert!(
            fraction < 0.05,
            "sweet-spot configurations must be rare, got {fraction}"
        );
    }

    #[test]
    fn sensitivity_is_bounded() {
        let surface = test_surface(8);
        for id in 0..2000u64 {
            let s = surface.sensitivity(id);
            assert!((0.015..=1.4).contains(&s));
        }
    }

    #[test]
    fn spec_combines_time_and_sensitivity() {
        let surface = test_surface(9);
        let spec = surface.spec(42);
        assert_eq!(spec.base_time(), surface.base_time(42));
        assert_eq!(spec.sensitivity(), surface.sensitivity(42));
    }

    #[test]
    #[should_panic(expected = "worst_time must exceed best_time")]
    fn invalid_config_rejected() {
        let config = SurfaceConfig {
            best_time: 100.0,
            worst_time: 100.0,
            ..SurfaceConfig::default()
        };
        SyntheticSurface::generate(test_space(), config, 1);
    }
}
