//! The four evaluated applications and their Table 1 parameter spaces.

use crate::param::ParameterSpace;
use crate::surface::SurfaceConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The system-level parameters shared by every application (Table 1, right column).
pub const SYSTEM_LEVEL_PARAMETERS: [&str; 18] = [
    "processor-affinity",
    "io-scheduler",
    "read-ahead",
    "vm.swappiness",
    "vm.dirty_ratio",
    "vm.overcommit_memory",
    "vm.overcommit_ratio",
    "vm.dirty_background_ratio",
    "vm.dirty_expire_centisecs",
    "kernel.sched_migration_cost_ns",
    "kernel.timer_migration",
    "kernel.sched_autogroup_enabled",
    "kernel.sched_min_granularity_ns",
    "kernel.sched_wakeup_granularity_ns",
    "kernel.sched_rr_timeslice_ms",
    "kernel.sched_rt_period_us",
    "kernel.sched_rt_runtime_us",
    "kernel.sched_latency_ns",
];

/// Redis application-level parameters (Table 1).
pub const REDIS_PARAMETERS: [&str; 18] = [
    "tcp-backlog",
    "rdbcompression",
    "rdbchecksum",
    "maxmemory",
    "maxmemory-policy",
    "appendonly",
    "appendfsync",
    "no-appendfsync-on-rewrite",
    "auto-aof-rewrite-percentage",
    "auto-aof-rewrite-min-size",
    "lazyfree-lazy-eviction",
    "lazyfree-lazy-expire",
    "lazyfree-lazy-server-del",
    "hz",
    "dynamic-hz",
    "active-defrag",
    "active-defrag-threshold-upper",
    "active-defrag-cycle-max",
];

/// GROMACS application-level parameters (Table 1).
pub const GROMACS_PARAMETERS: [&str; 6] = [
    "integrator",
    "nstlist",
    "ns_type",
    "fourier_spacing",
    "cutoff-scheme",
    "coulombtype",
];

/// FFmpeg application-level (compilation) parameters (Table 1).
pub const FFMPEG_PARAMETERS: [&str; 14] = [
    "opt-level",
    "function-inlining",
    "vectorization",
    "vectorization-cost",
    "prefetching",
    "loop-unrolling",
    "link-time-optimization",
    "stack-realignment",
    "ffast-math",
    "fomit-frame-pointer",
    "fstrict-aliasing",
    "floop-block",
    "floop-interchange",
    "floop-strip-mine",
];

/// LAMMPS application-level parameters (Table 1).
pub const LAMMPS_PARAMETERS: [&str; 6] = [
    "neighbor-skin-distance",
    "neighbor-list-build-frequency",
    "timestep",
    "output-frequency",
    "integrator",
    "cutoff-distance",
];

/// One of the four applications evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Application {
    /// Redis 6.0 serving one million requests.
    Redis,
    /// GROMACS with the water-cut benchmark.
    Gromacs,
    /// FFmpeg transcoding a 10 GB H.264 video (compilation-flag tuning).
    Ffmpeg,
    /// LAMMPS molecular dynamics.
    Lammps,
}

impl Application {
    /// All evaluated applications, in the order the paper's figures use.
    pub const ALL: [Application; 4] = [
        Application::Redis,
        Application::Gromacs,
        Application::Ffmpeg,
        Application::Lammps,
    ];

    /// The application name as printed in figures.
    pub fn name(&self) -> &'static str {
        match self {
            Application::Redis => "Redis",
            Application::Gromacs => "GROMACS",
            Application::Ffmpeg => "FFmpeg",
            Application::Lammps => "LAMMPS",
        }
    }

    /// The search-space size reported in Table 1.
    pub fn paper_search_space_size(&self) -> u64 {
        match self {
            Application::Redis => 7_800_000,
            Application::Gromacs => 3_800_000,
            Application::Ffmpeg => 6_100_000,
            Application::Lammps => 4_400_000,
        }
    }

    /// Application-level parameter names from Table 1.
    pub fn application_parameters(&self) -> &'static [&'static str] {
        match self {
            Application::Redis => &REDIS_PARAMETERS,
            Application::Gromacs => &GROMACS_PARAMETERS,
            Application::Ffmpeg => &FFMPEG_PARAMETERS,
            Application::Lammps => &LAMMPS_PARAMETERS,
        }
    }

    /// Builds the full Table 1 parameter space (application-level + system-level
    /// parameters) with a total size close to the paper's reported size.
    pub fn parameter_space(&self) -> ParameterSpace {
        let mut names: Vec<&str> = self.application_parameters().to_vec();
        names.extend_from_slice(&SYSTEM_LEVEL_PARAMETERS);
        ParameterSpace::with_target_size(&names, &[4, 2, 3, 2], self.paper_search_space_size())
    }

    /// Reduced-scale parameter space for fast experiments: same parameter names, but the
    /// size is capped at `max_size`. Used by the benchmark harnesses so that a full
    /// tournament finishes in seconds rather than hours.
    pub fn scaled_parameter_space(&self, max_size: u64) -> ParameterSpace {
        let mut names: Vec<&str> = self.application_parameters().to_vec();
        names.extend_from_slice(&SYSTEM_LEVEL_PARAMETERS);
        ParameterSpace::with_target_size(
            &names,
            &[4, 2, 3, 2],
            max_size.min(self.paper_search_space_size()),
        )
    }

    /// Default performance-surface knobs for this application.
    ///
    /// The `best_time`/`worst_time` bounds are read off the paper's figures (Fig. 1 for
    /// Redis; Fig. 10's axes for the others); they set the scale of every reproduced
    /// experiment.
    pub fn surface_config(&self) -> SurfaceConfig {
        match self {
            Application::Redis => SurfaceConfig {
                best_time: 230.0,
                worst_time: 792.0,
                fast_fraction: 0.05,
                cluster_fraction: 0.003,
                max_sensitivity: 1.1,
                min_sensitivity: 0.15,
                robust_fraction: 0.02,
            },
            Application::Gromacs => SurfaceConfig {
                best_time: 1350.0,
                worst_time: 4200.0,
                fast_fraction: 0.04,
                cluster_fraction: 0.003,
                max_sensitivity: 1.0,
                min_sensitivity: 0.12,
                robust_fraction: 0.02,
            },
            Application::Ffmpeg => SurfaceConfig {
                best_time: 195.0,
                worst_time: 640.0,
                fast_fraction: 0.05,
                cluster_fraction: 0.003,
                max_sensitivity: 1.2,
                min_sensitivity: 0.18,
                robust_fraction: 0.02,
            },
            Application::Lammps => SurfaceConfig {
                best_time: 1080.0,
                worst_time: 3400.0,
                fast_fraction: 0.04,
                cluster_fraction: 0.003,
                max_sensitivity: 1.0,
                min_sensitivity: 0.14,
                robust_fraction: 0.02,
            },
        }
    }

    /// The deterministic seed used to generate this application's surface, so that every
    /// crate and bench sees the same synthetic application.
    pub fn surface_seed(&self) -> u64 {
        match self {
            Application::Redis => 0x4ed1,
            Application::Gromacs => 0x6410,
            Application::Ffmpeg => 0x0ff3,
            Application::Lammps => 0x1a33,
        }
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_applications() {
        assert_eq!(Application::ALL.len(), 4);
        assert_eq!(Application::Redis.name(), "Redis");
    }

    #[test]
    fn full_spaces_approach_paper_sizes() {
        for app in Application::ALL {
            let space = app.parameter_space();
            let size = space.size();
            let target = app.paper_search_space_size();
            assert!(size <= target, "{app}: {size} > {target}");
            assert!(
                size as f64 >= target as f64 * 0.2,
                "{app}: generated size {size} too far below the paper's {target}"
            );
        }
    }

    #[test]
    fn spaces_include_system_parameters() {
        let space = Application::Redis.parameter_space();
        let names: Vec<&str> = space.parameters().iter().map(|p| p.name()).collect();
        assert!(names.contains(&"vm.swappiness"));
        assert!(names.contains(&"hz"));
        assert_eq!(names.len(), 18 + 18);
    }

    #[test]
    fn scaled_space_respects_cap() {
        let space = Application::Gromacs.scaled_parameter_space(50_000);
        assert!(space.size() <= 50_000);
        assert!(space.size() > 5_000);
    }

    #[test]
    fn surface_configs_are_valid() {
        for app in Application::ALL {
            app.surface_config().validate();
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Application::Lammps.to_string(), "LAMMPS");
    }
}
