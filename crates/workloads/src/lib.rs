//! Tunable workloads: parameter spaces and synthetic performance surfaces for the four
//! applications evaluated in the DarwinGame paper (Redis, GROMACS, FFmpeg, LAMMPS).
//!
//! The real applications are replaced by procedurally generated performance surfaces
//! whose statistics match the paper's motivation experiments (execution-time spread,
//! sensitivity/performance correlation, rare fast-and-robust configurations). See
//! `DESIGN.md` at the repository root for the full substitution argument.
//!
//! # Quick example
//!
//! ```
//! use dg_workloads::{Application, Workload};
//! use dg_cloudsim::{CloudEnvironment, InterferenceProfile, VmType};
//!
//! // A reduced-scale Redis workload (10k configurations instead of 7.8M).
//! let workload = Workload::scaled(Application::Redis, 10_000);
//!
//! // Evaluate one configuration in a noisy cloud environment.
//! let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 1);
//! let observed = cloud.run_single(workload.spec(42)).observed_time;
//! assert!(observed >= 230.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod param;
mod partition;
mod progress;
mod surface;
mod workload;

pub use app::{
    Application, FFMPEG_PARAMETERS, GROMACS_PARAMETERS, LAMMPS_PARAMETERS, REDIS_PARAMETERS,
    SYSTEM_LEVEL_PARAMETERS,
};
pub use param::{ConfigId, ConfigPoint, Parameter, ParameterSpace};
pub use partition::IndexPartition;
pub use progress::WorkUnit;
pub use surface::{PerformanceSurface, SurfaceConfig, SyntheticSurface};
pub use workload::Workload;
