//! Partitioning of the 1-D configuration index space into regions and subspaces.
//!
//! DarwinGame's regional phase divides the search space into `n_r` regions of equal size
//! (Sec. 3.3); the hybrid integration of Sec. 3.6 divides it into coarser *subspaces*
//! that an outer tuner navigates. Both are contiguous partitions of the index space and
//! share this implementation.

use crate::param::ConfigId;
use dg_cloudsim::SimRng;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A contiguous, equal-sized partition of the configuration index space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexPartition {
    total: u64,
    parts: usize,
}

impl IndexPartition {
    /// Partitions `total` configurations into `parts` contiguous pieces.
    ///
    /// If `parts > total`, the number of parts is clamped to `total` so that no part is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0` or `parts == 0`.
    pub fn new(total: u64, parts: usize) -> Self {
        assert!(total > 0, "cannot partition an empty space");
        assert!(parts > 0, "at least one part is required");
        let parts = (parts as u64).min(total) as usize;
        Self { total, parts }
    }

    /// Total number of configurations covered.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The index range covered by part `i`.
    ///
    /// Parts differ in size by at most one configuration.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.parts()`.
    pub fn range(&self, i: usize) -> Range<ConfigId> {
        assert!(i < self.parts, "part index out of range");
        let parts = self.parts as u64;
        let i = i as u64;
        let base = self.total / parts;
        let remainder = self.total % parts;
        // The first `remainder` parts get one extra element.
        let start = i * base + i.min(remainder);
        let len = base + u64::from(i < remainder);
        start..start + len
    }

    /// Number of configurations in part `i`.
    pub fn part_size(&self, i: usize) -> u64 {
        let r = self.range(i);
        r.end - r.start
    }

    /// The part that contains configuration `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.total()`.
    pub fn part_of(&self, index: ConfigId) -> usize {
        assert!(index < self.total, "configuration index out of range");
        let parts = self.parts as u64;
        let base = self.total / parts;
        let remainder = self.total % parts;
        let big_region_span = (base + 1) * remainder;
        let part = if index < big_region_span {
            index / (base + 1)
        } else {
            remainder + (index - big_region_span) / base
        };
        part as usize
    }

    /// Draws a uniformly random configuration index from part `i`.
    pub fn sample(&self, i: usize, rng: &mut SimRng) -> ConfigId {
        let range = self.range(i);
        let span = range.end - range.start;
        range.start + (rng.uniform() * span as f64) as u64
    }

    /// Draws `count` distinct configuration indices from part `i` (or the whole part if
    /// it has fewer than `count` configurations).
    pub fn sample_distinct(&self, i: usize, count: usize, rng: &mut SimRng) -> Vec<ConfigId> {
        let range = self.range(i);
        let span = (range.end - range.start) as usize;
        if span <= count {
            return range.collect();
        }
        let mut chosen = std::collections::BTreeSet::new();
        // Rejection sampling is fine because count << span in the regional phase.
        let mut attempts = 0usize;
        while chosen.len() < count && attempts < count * 64 {
            chosen.insert(self.sample(i, rng));
            attempts += 1;
        }
        // Degenerate fallback: fill sequentially from the start of the range.
        let mut result: Vec<ConfigId> = chosen.into_iter().collect();
        let mut next = range.start;
        while result.len() < count {
            if !result.contains(&next) {
                result.push(next);
            }
            next += 1;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_space_without_overlap() {
        let partition = IndexPartition::new(103, 10);
        let mut covered = 0u64;
        let mut previous_end = 0u64;
        for i in 0..partition.parts() {
            let r = partition.range(i);
            assert_eq!(r.start, previous_end, "parts must be contiguous");
            covered += r.end - r.start;
            previous_end = r.end;
        }
        assert_eq!(covered, 103);
        assert_eq!(previous_end, 103);
    }

    #[test]
    fn part_sizes_differ_by_at_most_one() {
        let partition = IndexPartition::new(1_000_003, 97);
        let sizes: Vec<u64> = (0..97).map(|i| partition.part_size(i)).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn part_of_is_inverse_of_range() {
        let partition = IndexPartition::new(517, 13);
        for i in 0..partition.parts() {
            for index in partition.range(i) {
                assert_eq!(partition.part_of(index), i, "index {index}");
            }
        }
    }

    #[test]
    fn more_parts_than_elements_is_clamped() {
        let partition = IndexPartition::new(5, 20);
        assert_eq!(partition.parts(), 5);
        for i in 0..5 {
            assert_eq!(partition.part_size(i), 1);
        }
    }

    #[test]
    fn samples_stay_inside_part() {
        let partition = IndexPartition::new(10_000, 25);
        let mut rng = SimRng::new(3);
        for i in [0usize, 7, 24] {
            let range = partition.range(i);
            for _ in 0..200 {
                let s = partition.sample(i, &mut rng);
                assert!(range.contains(&s));
            }
        }
    }

    #[test]
    fn sample_distinct_returns_unique_indices() {
        let partition = IndexPartition::new(10_000, 10);
        let mut rng = SimRng::new(4);
        let samples = partition.sample_distinct(3, 32, &mut rng);
        assert_eq!(samples.len(), 32);
        let unique: std::collections::BTreeSet<_> = samples.iter().collect();
        assert_eq!(unique.len(), 32);
        let range = partition.range(3);
        assert!(samples.iter().all(|s| range.contains(s)));
    }

    #[test]
    fn sample_distinct_small_part_returns_everything() {
        let partition = IndexPartition::new(64, 16); // 4 configs per part
        let mut rng = SimRng::new(5);
        let samples = partition.sample_distinct(2, 10, &mut rng);
        assert_eq!(samples.len(), 4);
    }

    #[test]
    #[should_panic(expected = "empty space")]
    fn empty_space_rejected() {
        IndexPartition::new(0, 4);
    }
}
