//! Work-progress semantics per application.
//!
//! DarwinGame's early-termination rule needs to know "how much work" each co-located
//! execution has completed. The paper tracks a different observable per application
//! (requests served, frames processed, output bytes produced); the simulator works with
//! abstract fractions in `[0, 1]`, and this module supplies the translation used when
//! reporting progress in logs and examples.

use crate::app::Application;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The unit in which an application's work progress is tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkUnit {
    /// Requests completed out of a total (Redis: one million requests).
    Requests {
        /// Total number of requests in the benchmark.
        total: u64,
    },
    /// Video frames processed out of a total (FFmpeg).
    Frames {
        /// Total number of frames in the input video.
        total: u64,
    },
    /// Output bytes produced out of an expected total (GROMACS, LAMMPS).
    OutputBytes {
        /// Expected output size in bytes.
        total: u64,
    },
}

impl WorkUnit {
    /// The work unit used for each evaluated application (Sec. 4 of the paper).
    pub fn for_application(app: Application) -> Self {
        match app {
            Application::Redis => WorkUnit::Requests { total: 1_000_000 },
            Application::Ffmpeg => WorkUnit::Frames { total: 864_000 },
            Application::Gromacs => WorkUnit::OutputBytes {
                total: 3_500_000_000,
            },
            Application::Lammps => WorkUnit::OutputBytes {
                total: 2_200_000_000,
            },
        }
    }

    /// Total amount of work in this unit.
    pub fn total(&self) -> u64 {
        match self {
            WorkUnit::Requests { total }
            | WorkUnit::Frames { total }
            | WorkUnit::OutputBytes { total } => *total,
        }
    }

    /// Converts an abstract work fraction into concrete completed units.
    ///
    /// The fraction is clamped into `[0, 1]`.
    pub fn completed(&self, fraction: f64) -> u64 {
        (self.total() as f64 * fraction.clamp(0.0, 1.0)).round() as u64
    }

    /// Converts completed units back into a fraction of the total work.
    pub fn fraction(&self, completed: u64) -> f64 {
        (completed as f64 / self.total() as f64).clamp(0.0, 1.0)
    }

    /// Human-readable progress string, e.g. `"412500/1000000 requests"`.
    pub fn describe(&self, fraction: f64) -> String {
        let done = self.completed(fraction);
        match self {
            WorkUnit::Requests { total } => format!("{done}/{total} requests"),
            WorkUnit::Frames { total } => format!("{done}/{total} frames"),
            WorkUnit::OutputBytes { total } => format!("{done}/{total} output bytes"),
        }
    }
}

impl fmt::Display for WorkUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkUnit::Requests { total } => write!(f, "{total} requests"),
            WorkUnit::Frames { total } => write!(f, "{total} frames"),
            WorkUnit::OutputBytes { total } => write!(f, "{total} output bytes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_application_units_match_paper() {
        assert!(matches!(
            WorkUnit::for_application(Application::Redis),
            WorkUnit::Requests { total: 1_000_000 }
        ));
        assert!(matches!(
            WorkUnit::for_application(Application::Ffmpeg),
            WorkUnit::Frames { .. }
        ));
        assert!(matches!(
            WorkUnit::for_application(Application::Gromacs),
            WorkUnit::OutputBytes { .. }
        ));
    }

    #[test]
    fn completed_and_fraction_are_inverse() {
        let unit = WorkUnit::Requests { total: 1_000_000 };
        let done = unit.completed(0.25);
        assert_eq!(done, 250_000);
        assert!((unit.fraction(done) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn fraction_is_clamped() {
        let unit = WorkUnit::Frames { total: 100 };
        assert_eq!(unit.completed(1.5), 100);
        assert_eq!(unit.completed(-0.5), 0);
        assert_eq!(unit.fraction(500), 1.0);
    }

    #[test]
    fn describe_mentions_unit() {
        let unit = WorkUnit::for_application(Application::Redis);
        assert!(unit.describe(0.5).contains("requests"));
        assert!(unit.to_string().contains("requests"));
    }
}
