//! Umbrella crate for the DarwinGame reproduction.
//!
//! This crate simply re-exports the workspace members so that the examples and
//! integration tests (and downstream users who want everything at once) can depend on a
//! single crate:
//!
//! * [`cloudsim`] — the simulated, interference-prone cloud ([`dg_cloudsim`]).
//! * [`workloads`] — parameter spaces and synthetic performance surfaces
//!   ([`dg_workloads`]).
//! * [`tuners`] — baseline tuners: Oracle, Exhaustive, Random, ActiveHarmony, OpenTuner,
//!   BLISS, NTBEA ([`dg_tuners`]).
//! * [`darwin`] — the DarwinGame tournament tuner and hybrid integration
//!   ([`darwin_core`]).
//! * [`exec`] — the [`dg_exec::ExecutionBackend`] trait with simulation, record/replay,
//!   memoizing, and surrogate-model backends ([`dg_exec`]).
//! * [`scenario`] — the composable cloud-scenario engine: declarative event timelines
//!   (preemptions, diurnal load, regime shifts, fleets) over any backend
//!   ([`dg_scenario`]).
//! * [`stats`] — shared statistics helpers ([`dg_stats`]).
//! * [`campaign`] — the parallel experiment-campaign runner ([`dg_campaign`]).
//! * [`serve`] — online continuous retuning: champion drift detection and live
//!   re-tournaments against the tune-once protocol ([`dg_serve`]).
//! * [`obs`] — structured tracing, unified metrics, and live progress streaming
//!   across the whole stack ([`dg_obs`]).
//!
//! # Quick example
//!
//! ```
//! use darwingame::prelude::*;
//!
//! let workload = Workload::scaled(Application::Redis, 2_000);
//! let mut cloud = CloudEnvironment::new(VmType::M5_8xlarge, InterferenceProfile::typical(), 1);
//! let mut config = TournamentConfig::scaled(6, 3);
//! config.players_per_game = Some(8);
//! let report = DarwinGame::new(config).run(&workload, &mut cloud);
//! assert!(report.champion < workload.size());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use darwin_core as darwin;
pub use dg_campaign as campaign;
pub use dg_cloudsim as cloudsim;
pub use dg_exec as exec;
pub use dg_obs as obs;
pub use dg_scenario as scenario;
pub use dg_serve as serve;
pub use dg_stats as stats;
pub use dg_tuners as tuners;
pub use dg_workloads as workloads;

/// The most commonly used types, re-exported flat for examples and quick experiments.
pub mod prelude {
    pub use darwin_core::{
        AblationConfig, DarwinGame, HybridDarwinGame, TournamentConfig, TournamentReport,
    };
    pub use dg_campaign::{
        cell_cost_estimates, default_workers, register_darwin_variant, standard_registry, Campaign,
        CampaignLab, CampaignReport, CampaignSpec, ExperimentScale, LabError, LabOutcome,
        MergeError, ProgressMeter, ProgressUpdate, ShardPlan, ShardReport, ShardStrategy,
    };
    pub use dg_cloudsim::{
        CloudEnvironment, DedicatedEnvironment, ExecutionSpec, InterferenceProfile, SimRng,
        SimTime, VmType,
    };
    pub use dg_exec::{
        process_launches, BackendProvider, CommandTemplate, ExecutionBackend, ExecutionTrace,
        GameRules, MemoBackend, ProcessBackend, ProcessError, ProcessProvider, SimBackend,
        SurrogateBackend, SurrogateConfig, SurrogateProvider, SurrogateStats, TimingSource,
        TraceRecorder, TraceReplayer,
    };
    pub use dg_obs::{
        emit, emit_with, install_sink, obs_enabled, remove_sink, set_obs_enabled, EventSink,
        JsonlSink, MetricsSnapshot, ObsEvent, ObsRecord, RingSink, SinkId, Span,
    };
    pub use dg_scenario::{ScenarioBackend, ScenarioEvent, ScenarioProvider, ScenarioSpec};
    pub use dg_serve::{
        ChampionMonitor, MonitorConfig, RetuneLoop, RetunePolicy, RetuneReport,
        RetuneScenarioSummary, RetuneSpec, RetuneSweep, ServeMode,
    };
    pub use dg_stats::{
        coefficient_of_variation, mean, DriftConfig, DriftDetector, EmpiricalCdf, Summary,
    };
    pub use dg_tuners::{
        ActiveHarmony, Bliss, ExhaustiveSearch, Ntbea, OpenTuner, OracleTuner, RandomSearch, Tuner,
        TunerRegistry, TuningBudget, TuningOutcome,
    };
    pub use dg_workloads::{Application, ParameterSpace, Workload};
}
