//! Offline stand-in for `proptest`, covering the subset this workspace uses:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * numeric `Range` strategies (`0.0f64..1.0`, `1usize..64`, `0u64..1_000`, ...),
//! * `prop::collection::vec(strategy, size)` with either a fixed size or a size range.
//!
//! Unlike the real proptest there is **no shrinking** and the case stream is fully
//! deterministic: each test derives its RNG from the test's module path and name plus
//! the case index, so failures reproduce exactly across runs and machines. That
//! determinism is a feature here — the tier-1 suite must pass identically on every
//! run.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Produces values of `Value` from a deterministic RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 range strategy");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    /// Always yields a clone of one fixed value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A count of elements for collection strategies: fixed or drawn from a range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly drawn from `[start, end)`.
        Span(Range<usize>),
    }

    impl SizeRange {
        pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
            match self {
                SizeRange::Fixed(n) => *n,
                SizeRange::Span(range) => {
                    assert!(range.start < range.end, "empty collection size range");
                    range.start + rng.below((range.end - range.start) as u64) as usize
                }
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange::Span(range)
        }
    }

    /// Strategy for `Vec<S::Value>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub(crate) fn vec_strategy<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::{SizeRange, Strategy, VecStrategy};

    /// `Vec` strategy with a fixed size (`vec(s, 6)`) or size range (`vec(s, 1..10)`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        super::strategy::vec_strategy(element, size)
    }
}

pub mod test_runner {
    //! The deterministic RNG driving every strategy.

    /// SplitMix64-based generator seeded from a test identifier and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for one test case; the same `(test_id, case)` pair always
        /// produces the same value stream.
        pub fn deterministic(test_id: &str, case: u64) -> Self {
            // FNV-1a over the identifier, mixed with the case index.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in test_id.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                state: hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below requires a non-zero bound");
            // Multiply-shift bounded sampling; bias is < 2^-64 per draw.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Number of cases each `proptest!` test runs (the real default is 256; this shim
/// trades a few cases for suite speed while staying deterministic).
pub const DEFAULT_CASES: u64 = 64;

/// Declares deterministic property tests with `arg in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::DEFAULT_CASES {
                    let mut proptest_rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut proptest_rng);
                    )*
                    // Borrow-check friendliness: arguments may go unused in edge cases.
                    let _ = &proptest_rng;
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name (no shrinking, so it simply panics).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_spec(fixed in prop::collection::vec(0u32..5, 4),
                                  ranged in prop::collection::vec(0.0f64..1.0, 1..9)) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..9).contains(&ranged.len()));
            prop_assert!(ranged.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
