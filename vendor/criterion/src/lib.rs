//! Offline stand-in for `criterion`, covering the subset the `dg-bench` micro
//! benchmarks use: `criterion_group!`/`criterion_main!`, `Criterion::sample_size`,
//! `Criterion::bench_function`, `Bencher::iter`, `Bencher::iter_batched`, and
//! `BatchSize`.
//!
//! The measurement protocol is deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples whose iteration count is chosen so a
//! sample takes roughly 10 ms, and the mean / median / minimum per-iteration times
//! are printed. There is no statistical outlier analysis, HTML report, or saved
//! baseline — this harness exists so `cargo bench` runs offline and regressions are
//! visible from the printed numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped per timing sample; accepted for compatibility.
///
/// The shim times one routine invocation per sample regardless of the variant, so
/// the distinction only matters for how often `setup` runs (always once per
/// invocation here, matching `BatchSize::PerIteration` semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: the real criterion batches many per allocation.
    SmallInput,
    /// Large inputs: the real criterion batches few per allocation.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher<'a> {
    config: &'a Criterion,
    samples: Vec<Duration>,
}

impl<'a> Bencher<'a> {
    /// Times `routine`, called repeatedly, reporting per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes ~10 ms.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark registry / configuration; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples >= 2, "sample_size must be at least 2");
        self.sample_size = samples;
        self
    }

    /// Runs one named benchmark and prints its per-iteration timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self,
            samples: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher);
        let mut sorted = bencher.samples.clone();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len().max(1) as u32;
        let median = sorted[sorted.len() / 2];
        let min = sorted.first().copied().unwrap_or_default();
        println!(
            "{id:<40} mean {:>12} | median {:>12} | min {:>12} | samples {}",
            format_duration(mean),
            format_duration(median),
            format_duration(min),
            sorted.len()
        );
        self
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group; supports both the positional and the
/// `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to a `main` that runs every listed group (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_requested_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("shim_smoke", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0;
        c.bench_function("batched_smoke", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 4);
    }
}
