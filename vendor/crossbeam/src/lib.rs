//! Offline stand-in for the `crossbeam` crate, covering exactly the API this
//! workspace uses: `crossbeam::thread::scope` with `Scope::spawn` and
//! `ScopedJoinHandle::join`.
//!
//! Implemented on top of `std::thread::scope` (stable since Rust 1.63), which did not
//! exist when crossbeam's scoped threads were introduced. Semantics match for the
//! supported surface, with one deliberate difference: the real crossbeam returns
//! `Err` from `scope` when an unjoined child panicked, while this shim — like std —
//! propagates such panics. All call sites in this workspace join every handle, so
//! the difference is unobservable here.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    /// A scope handle; mirrors `crossbeam::thread::Scope`.
    ///
    /// Spawn closures receive `&Scope` so they can spawn further scoped threads,
    /// exactly like crossbeam.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned handle to a scoped thread; mirrors `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning `Err` with the panic payload if
        /// the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a copy of the scope handle
        /// (crossbeam's signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope for spawning scoped threads, returning the closure's result.
    ///
    /// Always returns `Ok`: unlike crossbeam, a panic in an unjoined child propagates
    /// out of `scope` (std semantics) instead of surfacing as `Err`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_returns() {
            let data = [1, 2, 3, 4];
            let total = super::scope(|scope| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<i32>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_through_scope_argument() {
            let result = super::scope(|scope| {
                scope
                    .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(result, 42);
        }
    }
}
