//! Offline stand-in for `serde`: the `Serialize`/`Deserialize` trait names plus
//! re-exported no-op derive macros, so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile exactly as they would against the
//! real crate. See `vendor/README.md` for the substitution policy.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; nothing serializes yet).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods; nothing deserializes yet).
pub trait Deserialize<'de> {}
