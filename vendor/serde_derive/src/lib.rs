//! No-op stand-ins for serde's `Serialize`/`Deserialize` derive macros.
//!
//! The workspace builds offline, so the real `serde_derive` (and its `syn`/`quote`
//! dependency tree) is unavailable. Nothing in the repository serializes data yet —
//! the derives exist so that types can already be annotated for the day persistence
//! lands — so expanding to an empty token stream is sufficient.

use proc_macro::TokenStream;

/// Derives nothing; accepts any item so `#[derive(Serialize)]` compiles.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; accepts any item so `#[derive(Deserialize)]` compiles.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
